// Package logic provides the Boolean logic network substrate used by the
// SOI domino technology mapper: a directed acyclic graph of multi-input
// gates with named primary inputs and outputs, plus evaluation, structural
// queries and statistics.
//
// Networks are append-only: every gate's fanins must already exist when the
// gate is added, so the node slice is always in topological order. This
// invariant is relied on throughout the mapper pipeline.
package logic

import (
	"fmt"
	"strings"
)

// Op identifies the function computed by a node.
type Op uint8

// Node operations. Input nodes have no fanins; Buf and Not take exactly one
// fanin; the remaining gates take two or more.
const (
	Input Op = iota
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Const0
	Const1
)

var opNames = [...]string{
	Input:  "input",
	Buf:    "buf",
	Not:    "not",
	And:    "and",
	Or:     "or",
	Nand:   "nand",
	Nor:    "nor",
	Xor:    "xor",
	Xnor:   "xnor",
	Const0: "const0",
	Const1: "const1",
}

// String returns the lower-case mnemonic for the operation.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Inverting reports whether the operation inverts with respect to its
// monotone core (NOT, NAND, NOR). XOR/XNOR are neither monotone nor
// anti-monotone and report false.
func (op Op) Inverting() bool {
	return op == Not || op == Nand || op == Nor
}

// MinFanin returns the minimum legal fanin count for the operation.
func (op Op) MinFanin() int {
	switch op {
	case Input, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fanin count for the operation, or -1
// for unbounded.
func (op Op) MaxFanin() int {
	switch op {
	case Input, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	default:
		return -1
	}
}

// Node is one vertex of a Network. The zero value is an unnamed Input.
type Node struct {
	Op     Op
	Name   string // optional; inputs and gate outputs may be named
	Fanin  []int  // node ids, all smaller than this node's id
	fanout int    // cached by ComputeFanout
}

// Output names one primary output of a Network and the node that drives it.
type Output struct {
	Name string
	Node int
}

// Network is a combinational Boolean network. Use New and the Add methods
// to build one; nodes are stored in topological order by construction.
type Network struct {
	Name    string
	Nodes   []Node
	Inputs  []int // ids of Input nodes, in declaration order
	Outputs []Output

	byName map[string]int // name -> node id, for named nodes
}

// New returns an empty network with the given name.
func New(name string) *Network {
	return &Network{Name: name, byName: make(map[string]int)}
}

// Len returns the number of nodes in the network.
func (n *Network) Len() int { return len(n.Nodes) }

// AddInput appends a primary input with the given name and returns its id.
// The name must be unique among named nodes.
func (n *Network) AddInput(name string) int {
	id := n.add(Node{Op: Input, Name: name})
	n.Inputs = append(n.Inputs, id)
	return id
}

// AddConst appends a constant node and returns its id.
func (n *Network) AddConst(value bool) int {
	op := Const0
	if value {
		op = Const1
	}
	return n.add(Node{Op: op})
}

// AddGate appends a gate computing op over the given fanins and returns its
// id. It panics if a fanin id is out of range (>= the new node's id) or the
// fanin count is illegal for op: both indicate a programming error in the
// caller, not recoverable input.
func (n *Network) AddGate(op Op, fanin ...int) int {
	if len(fanin) < op.MinFanin() || (op.MaxFanin() >= 0 && len(fanin) > op.MaxFanin()) {
		panic(fmt.Sprintf("logic: %s gate with %d fanins", op, len(fanin)))
	}
	id := len(n.Nodes)
	for _, f := range fanin {
		if f < 0 || f >= id {
			panic(fmt.Sprintf("logic: gate %d references fanin %d", id, f))
		}
	}
	return n.add(Node{Op: op, Fanin: append([]int(nil), fanin...)})
}

// AddNamedGate is AddGate plus a name registration for the new node.
func (n *Network) AddNamedGate(name string, op Op, fanin ...int) int {
	id := n.AddGate(op, fanin...)
	n.Nodes[id].Name = name
	n.registerName(name, id)
	return id
}

func (n *Network) add(node Node) int {
	id := len(n.Nodes)
	n.Nodes = append(n.Nodes, node)
	if node.Name != "" {
		n.registerName(node.Name, id)
	}
	return id
}

func (n *Network) registerName(name string, id int) {
	if n.byName == nil {
		n.byName = make(map[string]int)
	}
	if prev, ok := n.byName[name]; ok && prev != id {
		panic(fmt.Sprintf("logic: duplicate node name %q", name))
	}
	n.byName[name] = id
}

// NodeByName returns the id of the named node, or -1 if absent.
func (n *Network) NodeByName(name string) int {
	if id, ok := n.byName[name]; ok {
		return id
	}
	return -1
}

// AddOutput marks node as a primary output under the given name.
func (n *Network) AddOutput(name string, node int) {
	if node < 0 || node >= len(n.Nodes) {
		panic(fmt.Sprintf("logic: output %q references node %d", name, node))
	}
	n.Outputs = append(n.Outputs, Output{Name: name, Node: node})
}

// Check validates structural invariants and returns the first violation. A
// network built only through the Add methods always passes.
func (n *Network) Check() error {
	for id, node := range n.Nodes {
		if len(node.Fanin) < node.Op.MinFanin() {
			return fmt.Errorf("node %d (%s): %d fanins, need at least %d",
				id, node.Op, len(node.Fanin), node.Op.MinFanin())
		}
		if max := node.Op.MaxFanin(); max >= 0 && len(node.Fanin) > max {
			return fmt.Errorf("node %d (%s): %d fanins, at most %d allowed",
				id, node.Op, len(node.Fanin), max)
		}
		for _, f := range node.Fanin {
			if f < 0 || f >= id {
				return fmt.Errorf("node %d: fanin %d breaks topological order", id, f)
			}
		}
	}
	for _, out := range n.Outputs {
		if out.Node < 0 || out.Node >= len(n.Nodes) {
			return fmt.Errorf("output %q: node %d out of range", out.Name, out.Node)
		}
	}
	seen := make(map[string]bool, len(n.Inputs))
	for _, id := range n.Inputs {
		if n.Nodes[id].Op != Input {
			return fmt.Errorf("input list entry %d is a %s node", id, n.Nodes[id].Op)
		}
		if name := n.Nodes[id].Name; seen[name] {
			return fmt.Errorf("duplicate input name %q", name)
		} else {
			seen[name] = true
		}
	}
	return nil
}

// ComputeFanout recomputes and caches per-node fanout counts (gate fanins
// only; primary-output references are reported separately by OutputRefs).
// It returns the counts indexed by node id.
func (n *Network) ComputeFanout() []int {
	counts := make([]int, len(n.Nodes))
	for _, node := range n.Nodes {
		for _, f := range node.Fanin {
			counts[f]++
		}
	}
	for id := range n.Nodes {
		n.Nodes[id].fanout = counts[id]
	}
	return counts
}

// Fanout returns the cached fanout count for node id. ComputeFanout must
// have been called after the last structural change.
func (n *Network) Fanout(id int) int { return n.Nodes[id].fanout }

// FanoutCounts returns per-node fanout counts (gate fanins only) without
// touching the per-node cache. Unlike ComputeFanout it never mutates the
// network, so concurrent readers — e.g. parallel mapping runs sharing one
// network — may call it freely.
func (n *Network) FanoutCounts() []int {
	counts := make([]int, len(n.Nodes))
	for _, node := range n.Nodes {
		for _, f := range node.Fanin {
			counts[f]++
		}
	}
	return counts
}

// OutputRefs returns how many primary outputs each node drives.
func (n *Network) OutputRefs() []int {
	refs := make([]int, len(n.Nodes))
	for _, out := range n.Outputs {
		refs[out.Node]++
	}
	return refs
}

// Levels returns, for every node, its logic depth: inputs and constants are
// level 0 and every gate is one more than its deepest fanin.
func (n *Network) Levels() []int {
	levels := make([]int, len(n.Nodes))
	for id, node := range n.Nodes {
		lv := 0
		for _, f := range node.Fanin {
			if levels[f]+1 > lv {
				lv = levels[f] + 1
			}
		}
		levels[id] = lv
	}
	return levels
}

// Depth returns the maximum level over all primary outputs (0 for a network
// whose outputs are inputs or constants).
func (n *Network) Depth() int {
	levels := n.Levels()
	d := 0
	for _, out := range n.Outputs {
		if levels[out.Node] > d {
			d = levels[out.Node]
		}
	}
	return d
}

// Stats summarizes the structural content of a network.
type Stats struct {
	Inputs  int
	Outputs int
	Gates   int // non-input, non-constant nodes
	ByOp    map[Op]int
	Depth   int
}

// Stats computes summary statistics.
func (n *Network) Stats() Stats {
	s := Stats{Inputs: len(n.Inputs), Outputs: len(n.Outputs), ByOp: make(map[Op]int)}
	for _, node := range n.Nodes {
		s.ByOp[node.Op]++
		switch node.Op {
		case Input, Const0, Const1:
		default:
			s.Gates++
		}
	}
	s.Depth = n.Depth()
	return s
}

// String renders a short human-readable description.
func (n *Network) String() string {
	s := n.Stats()
	return fmt.Sprintf("%s: %d inputs, %d outputs, %d gates, depth %d",
		n.Name, s.Inputs, s.Outputs, s.Gates, s.Depth)
}

// Dump writes the full node list, one line per node, mostly for debugging
// and golden tests.
func (n *Network) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s\n", n.Name)
	for id, node := range n.Nodes {
		fmt.Fprintf(&b, "  %4d %-6s", id, node.Op)
		if node.Name != "" {
			fmt.Fprintf(&b, " %q", node.Name)
		}
		if len(node.Fanin) > 0 {
			fmt.Fprintf(&b, " <- %v", node.Fanin)
		}
		b.WriteByte('\n')
	}
	for _, out := range n.Outputs {
		fmt.Fprintf(&b, "  output %q = node %d\n", out.Name, out.Node)
	}
	return b.String()
}
