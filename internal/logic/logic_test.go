package logic

import (
	"math/rand"
	"strings"
	"testing"
)

// buildMajority returns maj(a,b,c) = ab + bc + ca.
func buildMajority(t *testing.T) *Network {
	t.Helper()
	n := New("maj3")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	ab := n.AddGate(And, a, b)
	bc := n.AddGate(And, b, c)
	ca := n.AddGate(And, c, a)
	out := n.AddGate(Or, n.AddGate(Or, ab, bc), ca)
	n.AddOutput("maj", out)
	if err := n.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return n
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{Input: "input", And: "and", Nor: "nor", Xnor: "xnor", Const1: "const1"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestOpFaninBounds(t *testing.T) {
	if Input.MinFanin() != 0 || Input.MaxFanin() != 0 {
		t.Error("Input fanin bounds wrong")
	}
	if Not.MinFanin() != 1 || Not.MaxFanin() != 1 {
		t.Error("Not fanin bounds wrong")
	}
	if And.MinFanin() != 2 || And.MaxFanin() != -1 {
		t.Error("And fanin bounds wrong")
	}
}

func TestMajorityEval(t *testing.T) {
	n := buildMajority(t)
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tt {
		a, b, c := i&1 != 0, i&2 != 0, i&4 != 0
		ones := 0
		for _, v := range []bool{a, b, c} {
			if v {
				ones++
			}
		}
		if want := ones >= 2; row[0] != want {
			t.Errorf("maj(%v,%v,%v) = %v, want %v", a, b, c, row[0], want)
		}
	}
}

func TestEvalAllOps(t *testing.T) {
	n := New("ops")
	a := n.AddInput("a")
	b := n.AddInput("b")
	gates := map[string]int{
		"buf":  n.AddGate(Buf, a),
		"not":  n.AddGate(Not, a),
		"and":  n.AddGate(And, a, b),
		"or":   n.AddGate(Or, a, b),
		"nand": n.AddGate(Nand, a, b),
		"nor":  n.AddGate(Nor, a, b),
		"xor":  n.AddGate(Xor, a, b),
		"xnor": n.AddGate(Xnor, a, b),
		"c0":   n.AddConst(false),
		"c1":   n.AddConst(true),
	}
	for name, id := range gates {
		n.AddOutput(name, id)
	}
	want := func(name string, av, bv bool) bool {
		switch name {
		case "buf":
			return av
		case "not":
			return !av
		case "and":
			return av && bv
		case "or":
			return av || bv
		case "nand":
			return !(av && bv)
		case "nor":
			return !(av || bv)
		case "xor":
			return av != bv
		case "xnor":
			return av == bv
		case "c0":
			return false
		case "c1":
			return true
		}
		t.Fatalf("unknown gate %q", name)
		return false
	}
	for i := 0; i < 4; i++ {
		av, bv := i&1 != 0, i&2 != 0
		out, err := n.Eval([]bool{av, bv})
		if err != nil {
			t.Fatal(err)
		}
		for j, o := range n.Outputs {
			if out[j] != want(o.Name, av, bv) {
				t.Errorf("%s(%v,%v) = %v, want %v", o.Name, av, bv, out[j], want(o.Name, av, bv))
			}
		}
	}
}

func TestWideGates(t *testing.T) {
	n := New("wide")
	var ins []int
	for i := 0; i < 5; i++ {
		ins = append(ins, n.AddInput(string(rune('a'+i))))
	}
	and5 := n.AddGate(And, ins...)
	or5 := n.AddGate(Or, ins...)
	xor5 := n.AddGate(Xor, ins...)
	n.AddOutput("and5", and5)
	n.AddOutput("or5", or5)
	n.AddOutput("xor5", xor5)
	for i := 0; i < 32; i++ {
		in := make([]bool, 5)
		ones := 0
		for j := range in {
			in[j] = i&(1<<j) != 0
			if in[j] {
				ones++
			}
		}
		out, err := n.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != (ones == 5) || out[1] != (ones > 0) || out[2] != (ones%2 == 1) {
			t.Errorf("wide gates wrong for input %05b: got %v", i, out)
		}
	}
}

func TestEvalInputCountMismatch(t *testing.T) {
	n := buildMajority(t)
	if _, err := n.Eval([]bool{true}); err == nil {
		t.Error("Eval with wrong input count should fail")
	}
}

func TestTruthTableTooLarge(t *testing.T) {
	n := New("big")
	for i := 0; i < 21; i++ {
		n.AddInput(string(rune('a' + i)))
	}
	if _, err := n.TruthTable(); err == nil {
		t.Error("TruthTable over 21 inputs should fail")
	}
}

func TestAddGatePanics(t *testing.T) {
	n := New("p")
	a := n.AddInput("a")
	assertPanics(t, "forward fanin", func() { n.AddGate(And, a, 99) })
	assertPanics(t, "fanin count", func() { n.AddGate(And, a) })
	assertPanics(t, "not arity", func() { n.AddGate(Not, a, a) })
	assertPanics(t, "output range", func() { n.AddOutput("x", 42) })
	n.AddNamedGate("g", Buf, a)
	assertPanics(t, "duplicate name", func() { n.AddNamedGate("g", Buf, a) })
}

func assertPanics(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}

func TestLevelsAndDepth(t *testing.T) {
	n := buildMajority(t)
	levels := n.Levels()
	// inputs level 0, first ANDs level 1, inner OR level 2, outer OR level 3
	want := []int{0, 0, 0, 1, 1, 1, 2, 3}
	for i, lv := range levels {
		if lv != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, lv, want[i])
		}
	}
	if n.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", n.Depth())
	}
}

func TestFanoutAndOutputRefs(t *testing.T) {
	n := buildMajority(t)
	counts := n.ComputeFanout()
	// b feeds two AND gates
	if counts[1] != 2 {
		t.Errorf("fanout(b) = %d, want 2", counts[1])
	}
	if n.Fanout(1) != 2 {
		t.Errorf("cached fanout(b) = %d, want 2", n.Fanout(1))
	}
	refs := n.OutputRefs()
	if refs[len(n.Nodes)-1] != 1 {
		t.Errorf("output refs of root = %d, want 1", refs[len(n.Nodes)-1])
	}
}

func TestStatsAndString(t *testing.T) {
	n := buildMajority(t)
	s := n.Stats()
	if s.Inputs != 3 || s.Outputs != 1 || s.Gates != 5 || s.Depth != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if s.ByOp[And] != 3 || s.ByOp[Or] != 2 {
		t.Errorf("ByOp = %v", s.ByOp)
	}
	if !strings.Contains(n.String(), "maj3") {
		t.Errorf("String() = %q", n.String())
	}
	if !strings.Contains(n.Dump(), "output \"maj\"") {
		t.Errorf("Dump missing output line:\n%s", n.Dump())
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := buildMajority(t)
	c := n.Clone()
	c.Nodes[3].Fanin[0] = 2
	if n.Nodes[3].Fanin[0] == 2 {
		t.Error("Clone shares fanin slices")
	}
	if c.NodeByName("a") != n.NodeByName("a") {
		t.Error("Clone lost name registry")
	}
	out1, _ := n.Eval([]bool{true, true, false})
	if out1[0] != true {
		t.Error("original corrupted by clone mutation")
	}
}

func TestNodeByNameMissing(t *testing.T) {
	n := New("x")
	if n.NodeByName("nope") != -1 {
		t.Error("missing name should return -1")
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	n := buildMajority(t)
	n.Nodes[3].Fanin[0] = 7 // forward reference
	if err := n.Check(); err == nil {
		t.Error("Check should catch forward fanin")
	}
	n = buildMajority(t)
	n.Outputs[0].Node = 99
	if err := n.Check(); err == nil {
		t.Error("Check should catch out-of-range output")
	}
	n = buildMajority(t)
	n.Inputs[0] = 3 // an AND node
	if err := n.Check(); err == nil {
		t.Error("Check should catch non-input in input list")
	}
}

func TestRandomVectorsDeterministic(t *testing.T) {
	n := buildMajority(t)
	a := n.RandomVectors(rand.New(rand.NewSource(7)), 16)
	b := n.RandomVectors(rand.New(rand.NewSource(7)), 16)
	if len(a) != 16 || len(a[0]) != 3 {
		t.Fatalf("vector shape wrong: %d x %d", len(a), len(a[0]))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("RandomVectors not deterministic for equal seeds")
			}
		}
	}
}
