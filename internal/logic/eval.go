package logic

import "fmt"

// Eval evaluates the network for one assignment of primary-input values,
// given in the order of n.Inputs. It returns the primary-output values in
// the order of n.Outputs.
func (n *Network) Eval(inputs []bool) ([]bool, error) {
	values, err := n.EvalAll(inputs)
	if err != nil {
		return nil, err
	}
	outs := make([]bool, len(n.Outputs))
	for i, out := range n.Outputs {
		outs[i] = values[out.Node]
	}
	return outs, nil
}

// EvalAll evaluates the network and returns the value of every node.
func (n *Network) EvalAll(inputs []bool) ([]bool, error) {
	if len(inputs) != len(n.Inputs) {
		return nil, fmt.Errorf("logic: %d input values for %d inputs", len(inputs), len(n.Inputs))
	}
	values := make([]bool, len(n.Nodes))
	for i, id := range n.Inputs {
		values[id] = inputs[i]
	}
	for id, node := range n.Nodes {
		switch node.Op {
		case Input:
			// assigned above
		case Const0:
			values[id] = false
		case Const1:
			values[id] = true
		case Buf:
			values[id] = values[node.Fanin[0]]
		case Not:
			values[id] = !values[node.Fanin[0]]
		case And, Nand:
			v := true
			for _, f := range node.Fanin {
				v = v && values[f]
			}
			if node.Op == Nand {
				v = !v
			}
			values[id] = v
		case Or, Nor:
			v := false
			for _, f := range node.Fanin {
				v = v || values[f]
			}
			if node.Op == Nor {
				v = !v
			}
			values[id] = v
		case Xor, Xnor:
			v := false
			for _, f := range node.Fanin {
				v = v != values[f]
			}
			if node.Op == Xnor {
				v = !v
			}
			values[id] = v
		default:
			return nil, fmt.Errorf("logic: node %d has unknown op %v", id, node.Op)
		}
	}
	return values, nil
}

// TruthTable enumerates all 2^k input assignments (k = number of inputs,
// which must be at most 20) and returns one output vector per assignment.
// Assignment i uses bit j of i as the value of input j.
func (n *Network) TruthTable() ([][]bool, error) {
	k := len(n.Inputs)
	if k > 20 {
		return nil, fmt.Errorf("logic: truth table over %d inputs is too large", k)
	}
	rows := make([][]bool, 1<<k)
	in := make([]bool, k)
	for i := range rows {
		for j := 0; j < k; j++ {
			in[j] = i&(1<<j) != 0
		}
		out, err := n.Eval(in)
		if err != nil {
			return nil, err
		}
		rows[i] = out
	}
	return rows, nil
}
