// Package decompose lowers an arbitrary logic network into the
// technology-independent form the domino mappers consume: 2-input AND and
// OR gates plus inverters ("an initial decomposed network consisting of
// 2-input AND-OR gates and inverters", paper §IV).
//
// Wide gates become balanced binary trees (keeping depth logarithmic so the
// depth objective of Table IV is meaningful), XOR/XNOR expand into their
// two-level AND-OR form, constants are folded away, and structurally
// identical gates are shared.
package decompose

import (
	"fmt"

	"soidomino/internal/logic"
)

// Decompose returns a new network computing the same functions as n using
// only Input, Not, and 2-input And/Or nodes (plus Const nodes if an output
// folds to a constant). The input network is not modified.
func Decompose(n *logic.Network) (*logic.Network, error) {
	d := &decomposer{
		src:    n,
		dst:    logic.New(n.Name + ".dec"),
		memo:   make(map[int]lit, len(n.Nodes)),
		hash:   make(map[gateKey]int),
		nots:   make(map[int]int),
		consts: [2]int{-1, -1},
	}
	for _, id := range n.Inputs {
		d.memo[id] = lit{node: d.dst.AddInput(n.Nodes[id].Name)}
	}
	for _, out := range n.Outputs {
		v, err := d.visit(out.Node)
		if err != nil {
			return nil, err
		}
		d.dst.AddOutput(out.Name, d.materialize(v))
	}
	return d.dst, d.dst.Check()
}

// lit is a node in the destination network with an optional complement
// flag, so inverter placement can be deferred and folded.
type lit struct {
	node int
	neg  bool
	kind constKind
}

type constKind uint8

const (
	notConst constKind = iota
	const0
	const1
)

func (l lit) complement() lit {
	if l.kind == const0 {
		return lit{kind: const1}
	}
	if l.kind == const1 {
		return lit{kind: const0}
	}
	return lit{node: l.node, neg: !l.neg}
}

type gateKey struct {
	op   logic.Op
	a, b int // encoded literals: node*2 + neg, with a <= b for commutativity
}

type decomposer struct {
	src    *logic.Network
	dst    *logic.Network
	memo   map[int]lit
	hash   map[gateKey]int // strashed AND/OR gates
	nots   map[int]int     // node -> its inverter in dst
	consts [2]int
}

func (d *decomposer) visit(id int) (lit, error) {
	if v, ok := d.memo[id]; ok {
		return v, nil
	}
	node := d.src.Nodes[id]
	var v lit
	var err error
	switch node.Op {
	case logic.Const0:
		v = lit{kind: const0}
	case logic.Const1:
		v = lit{kind: const1}
	case logic.Buf:
		v, err = d.visit(node.Fanin[0])
	case logic.Not:
		v, err = d.visit(node.Fanin[0])
		v = v.complement()
	case logic.And, logic.Nand:
		v, err = d.tree(logic.And, node.Fanin)
		if node.Op == logic.Nand {
			v = v.complement()
		}
	case logic.Or, logic.Nor:
		v, err = d.tree(logic.Or, node.Fanin)
		if node.Op == logic.Nor {
			v = v.complement()
		}
	case logic.Xor, logic.Xnor:
		v, err = d.xorTree(node.Fanin)
		if node.Op == logic.Xnor {
			v = v.complement()
		}
	case logic.Input:
		return lit{}, fmt.Errorf("decompose: input node %d not pre-registered", id)
	default:
		return lit{}, fmt.Errorf("decompose: unsupported op %v", node.Op)
	}
	if err != nil {
		return lit{}, err
	}
	d.memo[id] = v
	return v, nil
}

// tree combines the fanins with op as a balanced binary tree.
func (d *decomposer) tree(op logic.Op, fanin []int) (lit, error) {
	lits := make([]lit, len(fanin))
	for i, f := range fanin {
		v, err := d.visit(f)
		if err != nil {
			return lit{}, err
		}
		lits[i] = v
	}
	return d.balance(op, lits), nil
}

func (d *decomposer) balance(op logic.Op, lits []lit) lit {
	for len(lits) > 1 {
		var next []lit
		for i := 0; i+1 < len(lits); i += 2 {
			next = append(next, d.gate(op, lits[i], lits[i+1]))
		}
		if len(lits)%2 == 1 {
			next = append(next, lits[len(lits)-1])
		}
		lits = next
	}
	return lits[0]
}

// xorTree expands a multi-input XOR into balanced 2-input XORs, each
// realized as (a AND !b) OR (!a AND b).
func (d *decomposer) xorTree(fanin []int) (lit, error) {
	lits := make([]lit, len(fanin))
	for i, f := range fanin {
		v, err := d.visit(f)
		if err != nil {
			return lit{}, err
		}
		lits[i] = v
	}
	for len(lits) > 1 {
		var next []lit
		for i := 0; i+1 < len(lits); i += 2 {
			a, b := lits[i], lits[i+1]
			t1 := d.gate(logic.And, a, b.complement())
			t2 := d.gate(logic.And, a.complement(), b)
			next = append(next, d.gate(logic.Or, t1, t2))
		}
		if len(lits)%2 == 1 {
			next = append(next, lits[len(lits)-1])
		}
		lits = next
	}
	return lits[0], nil
}

// gate builds (or reuses) an op gate over two literals with constant
// folding and idempotence/complement simplification.
func (d *decomposer) gate(op logic.Op, a, b lit) lit {
	// Constant folding.
	if a.kind != notConst || b.kind != notConst {
		if a.kind == notConst {
			a, b = b, a // put the constant first
		}
		dominant := const0 // AND is dominated by 0
		if op == logic.Or {
			dominant = const1
		}
		if a.kind == dominant {
			return lit{kind: dominant}
		}
		return b // identity element
	}
	// x op x and x op !x.
	if a.node == b.node {
		if a.neg == b.neg {
			return a
		}
		if op == logic.And {
			return lit{kind: const0}
		}
		return lit{kind: const1}
	}
	ea, eb := encode(a), encode(b)
	if ea > eb {
		ea, eb = eb, ea
	}
	key := gateKey{op: op, a: ea, b: eb}
	if id, ok := d.hash[key]; ok {
		return lit{node: id}
	}
	na := d.materialize(a)
	nb := d.materialize(b)
	id := d.dst.AddGate(op, na, nb)
	d.hash[key] = id
	return lit{node: id}
}

func encode(l lit) int {
	e := l.node * 2
	if l.neg {
		e++
	}
	return e
}

// materialize turns a literal into a concrete node id, inserting a shared
// inverter or constant node when needed.
func (d *decomposer) materialize(l lit) int {
	switch l.kind {
	case const0, const1:
		idx := 0
		if l.kind == const1 {
			idx = 1
		}
		if d.consts[idx] < 0 {
			d.consts[idx] = d.dst.AddConst(idx == 1)
		}
		return d.consts[idx]
	}
	if !l.neg {
		return l.node
	}
	if id, ok := d.nots[l.node]; ok {
		return id
	}
	id := d.dst.AddGate(logic.Not, l.node)
	d.nots[l.node] = id
	return id
}
