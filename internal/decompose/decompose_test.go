package decompose

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soidomino/internal/logic"
)

// checkEquivalent verifies src and dst compute identical functions over all
// input assignments (inputs must be few enough for a truth table).
func checkEquivalent(t *testing.T, src, dst *logic.Network) {
	t.Helper()
	t1, err := src.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := dst.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Fatalf("input count changed: %d vs %d rows", len(t1), len(t2))
	}
	for i := range t1 {
		for j := range t1[i] {
			if t1[i][j] != t2[i][j] {
				t.Fatalf("mismatch at row %d output %d", i, j)
			}
		}
	}
}

// checkForm verifies the decomposed network only contains the allowed ops.
func checkForm(t *testing.T, n *logic.Network) {
	t.Helper()
	for id, node := range n.Nodes {
		switch node.Op {
		case logic.Input, logic.Not, logic.Const0, logic.Const1:
		case logic.And, logic.Or:
			if len(node.Fanin) != 2 {
				t.Fatalf("node %d: %s with %d fanins", id, node.Op, len(node.Fanin))
			}
		default:
			t.Fatalf("node %d: op %s not allowed after decomposition", id, node.Op)
		}
	}
}

func TestDecomposeWideGates(t *testing.T) {
	n := logic.New("wide")
	var ins []int
	for i := 0; i < 7; i++ {
		ins = append(ins, n.AddInput(string(rune('a'+i))))
	}
	n.AddOutput("and7", n.AddGate(logic.And, ins...))
	n.AddOutput("or7", n.AddGate(logic.Or, ins...))
	n.AddOutput("nand7", n.AddGate(logic.Nand, ins...))
	n.AddOutput("nor7", n.AddGate(logic.Nor, ins...))
	n.AddOutput("xor7", n.AddGate(logic.Xor, ins...))
	n.AddOutput("xnor7", n.AddGate(logic.Xnor, ins...))
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	checkForm(t, d)
	checkEquivalent(t, n, d)
}

func TestDecomposeBalancedDepth(t *testing.T) {
	n := logic.New("bal")
	var ins []int
	for i := 0; i < 16; i++ {
		ins = append(ins, n.AddInput(string(rune('a'+i))))
	}
	n.AddOutput("f", n.AddGate(logic.And, ins...))
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Depth(); got != 4 {
		t.Errorf("16-input AND depth = %d, want 4 (balanced)", got)
	}
}

func TestDecomposeConstantFolding(t *testing.T) {
	n := logic.New("const")
	a := n.AddInput("a")
	one := n.AddConst(true)
	zero := n.AddConst(false)
	n.AddOutput("a_and_1", n.AddGate(logic.And, a, one))                      // = a
	n.AddOutput("a_and_0", n.AddGate(logic.And, a, zero))                     // = 0
	n.AddOutput("a_or_1", n.AddGate(logic.Or, a, one))                        // = 1
	n.AddOutput("a_or_0", n.AddGate(logic.Or, a, zero))                       // = a
	n.AddOutput("a_and_na", n.AddGate(logic.And, a, n.AddGate(logic.Not, a))) // = 0
	n.AddOutput("a_or_na", n.AddGate(logic.Or, a, n.AddGate(logic.Not, a)))   // = 1
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, n, d)
	if s := d.Stats(); s.Gates != 0 {
		t.Errorf("constant network still has %d gates:\n%s", s.Gates, d.Dump())
	}
}

func TestDecomposeIdempotence(t *testing.T) {
	n := logic.New("idem")
	a := n.AddInput("a")
	n.AddOutput("f", n.AddGate(logic.And, a, a))
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Gates != 0 {
		t.Errorf("AND(a,a) should fold to a, got %d gates", s.Gates)
	}
}

func TestDecomposeStructuralSharing(t *testing.T) {
	n := logic.New("share")
	a := n.AddInput("a")
	b := n.AddInput("b")
	// Two separate AND(a,b) gates plus the commuted AND(b,a).
	g1 := n.AddGate(logic.And, a, b)
	g2 := n.AddGate(logic.And, a, b)
	g3 := n.AddGate(logic.And, b, a)
	n.AddOutput("f", n.AddGate(logic.Or, n.AddGate(logic.Or, g1, g2), g3))
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, n, d)
	ands := 0
	for _, node := range d.Nodes {
		if node.Op == logic.And {
			ands++
		}
	}
	if ands != 1 {
		t.Errorf("structural hashing left %d AND gates, want 1:\n%s", ands, d.Dump())
	}
}

func TestDecomposeSharedInverter(t *testing.T) {
	n := logic.New("inv")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	na1 := n.AddGate(logic.Not, a)
	na2 := n.AddGate(logic.Not, a)
	n.AddOutput("f", n.AddGate(logic.And, na1, b))
	n.AddOutput("g", n.AddGate(logic.And, na2, c))
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, n, d)
	nots := 0
	for _, node := range d.Nodes {
		if node.Op == logic.Not {
			nots++
		}
	}
	if nots != 1 {
		t.Errorf("inverters not shared: %d NOT nodes", nots)
	}
}

func TestDecomposeDoubleNegation(t *testing.T) {
	n := logic.New("dn")
	a := n.AddInput("a")
	n.AddOutput("f", n.AddGate(logic.Not, n.AddGate(logic.Not, a)))
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, n, d)
	if s := d.Stats(); s.Gates != 0 {
		t.Errorf("double negation should vanish, got %d gates", s.Gates)
	}
}

func TestDecomposeXor2Form(t *testing.T) {
	n := logic.New("x2")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.Xor, a, b))
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	checkForm(t, d)
	checkEquivalent(t, n, d)
	s := d.Stats()
	// (a & !b) | (!a & b): 2 AND + 1 OR + 2 NOT
	if s.ByOp[logic.And] != 2 || s.ByOp[logic.Or] != 1 || s.ByOp[logic.Not] != 2 {
		t.Errorf("xor2 decomposition shape: %v", s.ByOp)
	}
}

// Property test: decomposition preserves function on random networks.
func TestDecomposeEquivalenceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(r)
		d, err := Decompose(n)
		if err != nil {
			return false
		}
		t1, err1 := n.TruthTable()
		t2, err2 := d.TruthTable()
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range t1 {
			for j := range t1[i] {
				if t1[i][j] != t2[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randomNetwork(rng *rand.Rand) *logic.Network {
	n := logic.New("rnd")
	nin := 3 + rng.Intn(5)
	var pool []int
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i))))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
	ngates := 5 + rng.Intn(25)
	for i := 0; i < ngates; i++ {
		op := ops[rng.Intn(len(ops))]
		k := 1
		if op.MaxFanin() != 1 {
			k = 2 + rng.Intn(3)
		}
		fanin := make([]int, k)
		for j := range fanin {
			fanin[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, n.AddGate(op, fanin...))
	}
	for i := 0; i < 2+rng.Intn(3); i++ {
		n.AddOutput("o"+string(rune('0'+i)), pool[rng.Intn(len(pool))])
	}
	return n
}

func TestDecomposePreservesNames(t *testing.T) {
	n := logic.New("names")
	a := n.AddInput("alpha")
	b := n.AddInput("beta")
	n.AddOutput("out", n.AddGate(logic.And, a, b))
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	if d.NodeByName("alpha") < 0 || d.NodeByName("beta") < 0 {
		t.Error("input names lost")
	}
	if d.Outputs[0].Name != "out" {
		t.Errorf("output name = %q", d.Outputs[0].Name)
	}
}
