// Package sp models the series-parallel nMOS pulldown network of a domino
// gate as an expression tree. Series composition stacks structures between
// the dynamic node (top) and ground (bottom); parallel composition places
// them side by side. The PBE analysis (internal/pbe), the transistor-level
// netlist (internal/netlist) and the mappers all operate on these trees.
package sp

import (
	"fmt"
	"strings"
)

// Kind discriminates tree nodes.
type Kind uint8

const (
	// Leaf is a single nMOS transistor driven by a signal.
	Leaf Kind = iota
	// Series stacks children vertically; Children[0] is at the top
	// (nearest the dynamic node), the last child touches the bottom.
	Series
	// Parallel places children side by side between two shared nodes.
	Parallel
)

func (k Kind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case Series:
		return "series"
	case Parallel:
		return "parallel"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Tree is one node of a series-parallel pulldown network.
type Tree struct {
	Kind Kind

	// Leaf fields.
	Signal  string // name of the driving signal
	Negated bool   // complemented primary-input literal
	FromPI  bool   // gate terminal driven by a primary input (possibly inverted)
	GateRef int    // id of the driving domino gate, or -1 for a primary input

	// Series/Parallel children.
	Children []*Tree
}

// NewLeaf returns a transistor leaf. gateRef is -1 when the signal is a
// primary input.
func NewLeaf(signal string, negated bool, gateRef int) *Tree {
	return &Tree{Kind: Leaf, Signal: signal, Negated: negated, FromPI: gateRef < 0, GateRef: gateRef}
}

// NewSeries composes children top-to-bottom, flattening nested series.
// A single child is returned unchanged.
func NewSeries(children ...*Tree) *Tree {
	return compose(Series, children)
}

// NewParallel composes children side by side, flattening nested parallels.
// A single child is returned unchanged.
func NewParallel(children ...*Tree) *Tree {
	return compose(Parallel, children)
}

func compose(kind Kind, children []*Tree) *Tree {
	if len(children) == 0 {
		panic("sp: composition of zero children")
	}
	if len(children) == 1 {
		return children[0]
	}
	flat := make([]*Tree, 0, len(children))
	for _, c := range children {
		if c == nil {
			panic("sp: nil child")
		}
		if c.Kind == kind {
			flat = append(flat, c.Children...)
		} else {
			flat = append(flat, c)
		}
	}
	return &Tree{Kind: kind, Children: flat}
}

// Width returns the maximum number of side-by-side conduction paths: 1 for
// a leaf, the max over children for series, the sum for parallel. This is
// the W of the paper's {W,H} tuples.
func (t *Tree) Width() int {
	switch t.Kind {
	case Leaf:
		return 1
	case Series:
		w := 0
		for _, c := range t.Children {
			if cw := c.Width(); cw > w {
				w = cw
			}
		}
		return w
	default:
		w := 0
		for _, c := range t.Children {
			w += c.Width()
		}
		return w
	}
}

// Height returns the maximum number of stacked transistors on any path:
// 1 for a leaf, the sum over children for series, the max for parallel.
// This is the H of the paper's {W,H} tuples.
func (t *Tree) Height() int {
	switch t.Kind {
	case Leaf:
		return 1
	case Series:
		h := 0
		for _, c := range t.Children {
			h += c.Height()
		}
		return h
	default:
		h := 0
		for _, c := range t.Children {
			if ch := c.Height(); ch > h {
				h = ch
			}
		}
		return h
	}
}

// Transistors counts the leaves of the tree.
func (t *Tree) Transistors() int {
	if t.Kind == Leaf {
		return 1
	}
	n := 0
	for _, c := range t.Children {
		n += c.Transistors()
	}
	return n
}

// HasPI reports whether any leaf is driven by a primary input; such gates
// need an n-clock foot transistor (paper: listing 2, create_domino_gate).
func (t *Tree) HasPI() bool {
	if t.Kind == Leaf {
		return t.FromPI
	}
	for _, c := range t.Children {
		if c.HasPI() {
			return true
		}
	}
	return false
}

// ParallelAtBottom reports whether the structure's bottom is a parallel
// stack: the paper's par_b flag. A leaf is false; a parallel node is true;
// a series node inherits from its bottom-most child.
func (t *Tree) ParallelAtBottom() bool {
	switch t.Kind {
	case Leaf:
		return false
	case Parallel:
		return true
	default:
		return t.Children[len(t.Children)-1].ParallelAtBottom()
	}
}

// ContainsParallel reports whether any parallel composition appears in the
// tree. Per the paper (§V), the PBE can only be excited in the presence of
// at least one parallel stack.
func (t *Tree) ContainsParallel() bool {
	if t.Kind == Parallel {
		return true
	}
	for _, c := range t.Children {
		if c.ContainsParallel() {
			return true
		}
	}
	return false
}

// Conducts evaluates whether the pulldown network conducts under the given
// signal values. Negated leaves conduct when their signal is false.
func (t *Tree) Conducts(values map[string]bool) bool {
	switch t.Kind {
	case Leaf:
		v := values[t.Signal]
		if t.Negated {
			v = !v
		}
		return v
	case Series:
		for _, c := range t.Children {
			if !c.Conducts(values) {
				return false
			}
		}
		return true
	default:
		for _, c := range t.Children {
			if c.Conducts(values) {
				return true
			}
		}
		return false
	}
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree {
	cp := *t
	if len(t.Children) > 0 {
		cp.Children = make([]*Tree, len(t.Children))
		for i, c := range t.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return &cp
}

// Leaves appends all leaf nodes in left-to-right (top-to-bottom) order.
func (t *Tree) Leaves() []*Tree {
	var out []*Tree
	var walk func(*Tree)
	walk = func(n *Tree) {
		if n.Kind == Leaf {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return out
}

// String renders the tree in the paper's expression notation: series as
// '*', parallel as '+', complemented literals with a leading '!'.
func (t *Tree) String() string {
	var b strings.Builder
	t.render(&b, Leaf)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, parent Kind) {
	switch t.Kind {
	case Leaf:
		if t.Negated {
			b.WriteByte('!')
		}
		b.WriteString(t.Signal)
	case Series:
		for i, c := range t.Children {
			if i > 0 {
				b.WriteByte('*')
			}
			c.render(b, Series)
		}
	case Parallel:
		if parent == Series {
			b.WriteByte('(')
		}
		for i, c := range t.Children {
			if i > 0 {
				b.WriteByte('+')
			}
			c.render(b, Parallel)
		}
		if parent == Series {
			b.WriteByte(')')
		}
	}
}

// Validate checks structural invariants: composition nodes have at least
// two children, nested same-kind composition is flattened, and leaves have
// signals.
func (t *Tree) Validate() error {
	switch t.Kind {
	case Leaf:
		if t.Signal == "" {
			return fmt.Errorf("sp: leaf without signal")
		}
		if len(t.Children) != 0 {
			return fmt.Errorf("sp: leaf with children")
		}
		return nil
	case Series, Parallel:
		if len(t.Children) < 2 {
			return fmt.Errorf("sp: %s with %d children", t.Kind, len(t.Children))
		}
		for _, c := range t.Children {
			if c.Kind == t.Kind {
				return fmt.Errorf("sp: unflattened nested %s", t.Kind)
			}
			if err := c.Validate(); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("sp: unknown kind %v", t.Kind)
}
