package sp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func leaf(name string) *Tree { return NewLeaf(name, false, -1) }

// fig2a builds (A+B+C)*D from paper figure 2(a): parallel stack on top,
// D at the bottom.
func fig2a() *Tree {
	return NewSeries(NewParallel(leaf("A"), leaf("B"), leaf("C")), leaf("D"))
}

func TestKindString(t *testing.T) {
	if Leaf.String() != "leaf" || Series.String() != "series" || Parallel.String() != "parallel" {
		t.Error("Kind.String broken")
	}
}

func TestWidthHeight(t *testing.T) {
	tr := fig2a()
	if tr.Width() != 3 {
		t.Errorf("Width = %d, want 3", tr.Width())
	}
	if tr.Height() != 2 {
		t.Errorf("Height = %d, want 2", tr.Height())
	}
	if tr.Transistors() != 4 {
		t.Errorf("Transistors = %d, want 4", tr.Transistors())
	}
	if leaf("x").Width() != 1 || leaf("x").Height() != 1 {
		t.Error("leaf dimensions wrong")
	}
}

func TestFig3Dimensions(t *testing.T) {
	// Paper fig 3: AND of two inputs is a series pair: W=1, H=2.
	and := NewSeries(leaf("a"), leaf("b"))
	if and.Width() != 1 || and.Height() != 2 {
		t.Errorf("series pair: W=%d H=%d, want 1,2", and.Width(), and.Height())
	}
	// OR of two series pairs: W=2, H=2 (the {2,2} solution, cost 4).
	or := NewParallel(and, NewSeries(leaf("c"), leaf("d")))
	if or.Width() != 2 || or.Height() != 2 {
		t.Errorf("or of pairs: W=%d H=%d, want 2,2", or.Width(), or.Height())
	}
	if or.Transistors() != 4 {
		t.Errorf("or of pairs: %d transistors, want 4", or.Transistors())
	}
}

func TestFlattening(t *testing.T) {
	s := NewSeries(NewSeries(leaf("a"), leaf("b")), leaf("c"))
	if len(s.Children) != 3 {
		t.Errorf("nested series not flattened: %d children", len(s.Children))
	}
	p := NewParallel(leaf("a"), NewParallel(leaf("b"), leaf("c")))
	if len(p.Children) != 3 {
		t.Errorf("nested parallel not flattened: %d children", len(p.Children))
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSingleChildComposition(t *testing.T) {
	l := leaf("a")
	if NewSeries(l) != l || NewParallel(l) != l {
		t.Error("single-child composition should return the child")
	}
}

func TestCompositionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSeries() },
		func() { NewSeries(leaf("a"), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestParallelAtBottom(t *testing.T) {
	if leaf("a").ParallelAtBottom() {
		t.Error("leaf has no parallel bottom")
	}
	if !NewParallel(leaf("a"), leaf("b")).ParallelAtBottom() {
		t.Error("parallel node is parallel at bottom")
	}
	// (A+B+C)*D: D at the bottom -> false.
	if fig2a().ParallelAtBottom() {
		t.Error("fig2a bottom is leaf D")
	}
	// D*(A+B+C): parallel at the bottom -> true.
	flipped := NewSeries(leaf("D"), NewParallel(leaf("A"), leaf("B"), leaf("C")))
	if !flipped.ParallelAtBottom() {
		t.Error("flipped fig2a has parallel bottom")
	}
}

func TestContainsParallel(t *testing.T) {
	chain := NewSeries(leaf("a"), leaf("b"), leaf("c"))
	if chain.ContainsParallel() {
		t.Error("pure series contains no parallel")
	}
	if !fig2a().ContainsParallel() {
		t.Error("fig2a contains a parallel stack")
	}
}

func TestHasPIAndGateRef(t *testing.T) {
	g := NewLeaf("g1", false, 7)
	if g.FromPI {
		t.Error("gate-driven leaf marked FromPI")
	}
	pi := NewLeaf("a", false, -1)
	if !pi.FromPI {
		t.Error("PI leaf not marked FromPI")
	}
	tr := NewSeries(g, pi)
	if !tr.HasPI() {
		t.Error("tree with PI leaf should report HasPI")
	}
	tr2 := NewSeries(g, NewLeaf("g2", false, 8))
	if tr2.HasPI() {
		t.Error("all-gate tree should not report HasPI")
	}
}

func TestConducts(t *testing.T) {
	tr := fig2a() // (A+B+C)*D
	cases := []struct {
		a, b, c, d bool
		want       bool
	}{
		{false, false, false, false, false},
		{true, false, false, false, false}, // D off blocks
		{true, false, false, true, true},
		{false, true, false, true, true},
		{false, false, true, true, true},
		{false, false, false, true, false},
		{true, true, true, true, true},
	}
	for _, c := range cases {
		v := map[string]bool{"A": c.a, "B": c.b, "C": c.c, "D": c.d}
		if got := tr.Conducts(v); got != c.want {
			t.Errorf("Conducts(%v) = %v, want %v", v, got, c.want)
		}
	}
}

func TestConductsNegatedLeaf(t *testing.T) {
	tr := NewSeries(NewLeaf("a", true, -1), leaf("b"))
	if !tr.Conducts(map[string]bool{"a": false, "b": true}) {
		t.Error("!a * b should conduct with a=0,b=1")
	}
	if tr.Conducts(map[string]bool{"a": true, "b": true}) {
		t.Error("!a * b should block with a=1")
	}
}

func TestString(t *testing.T) {
	if s := fig2a().String(); s != "(A+B+C)*D" {
		t.Errorf("String = %q, want (A+B+C)*D", s)
	}
	neg := NewParallel(NewLeaf("a", true, -1), leaf("b"))
	if s := neg.String(); s != "!a+b" {
		t.Errorf("String = %q, want !a+b", s)
	}
	nested := NewParallel(NewSeries(leaf("a"), leaf("b")), leaf("c"))
	if s := nested.String(); s != "a*b+c" {
		t.Errorf("String = %q, want a*b+c", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := fig2a()
	cp := tr.Clone()
	cp.Children[1].Signal = "X"
	if tr.Children[1].Signal != "D" {
		t.Error("Clone shares leaves")
	}
}

func TestLeavesOrder(t *testing.T) {
	ls := fig2a().Leaves()
	got := ""
	for _, l := range ls {
		got += l.Signal
	}
	if got != "ABCD" {
		t.Errorf("Leaves order = %q, want ABCD", got)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := &Tree{Kind: Series, Children: []*Tree{leaf("a")}}
	if bad.Validate() == nil {
		t.Error("1-child series should be invalid")
	}
	bad2 := &Tree{Kind: Leaf}
	if bad2.Validate() == nil {
		t.Error("leaf without signal should be invalid")
	}
	bad3 := &Tree{Kind: Series, Children: []*Tree{
		{Kind: Series, Children: []*Tree{leaf("a"), leaf("b")}},
		leaf("c"),
	}}
	if bad3.Validate() == nil {
		t.Error("unflattened nesting should be invalid")
	}
	bad4 := &Tree{Kind: Kind(9)}
	if bad4.Validate() == nil {
		t.Error("unknown kind should be invalid")
	}
}

// randomTree builds a random valid SP tree over k signals.
func randomTree(rng *rand.Rand, depth int) *Tree {
	if depth == 0 || rng.Intn(3) == 0 {
		return NewLeaf(string(rune('a'+rng.Intn(6))), rng.Intn(4) == 0, -1)
	}
	k := 2 + rng.Intn(2)
	children := make([]*Tree, k)
	for i := range children {
		children[i] = randomTree(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return NewSeries(children...)
	}
	return NewParallel(children...)
}

// Property: width*height bounds, leaf count consistency, validation, and
// clone equivalence hold for arbitrary trees.
func TestTreePropertiesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 4)
		if tr.Validate() != nil {
			return false
		}
		n := tr.Transistors()
		w, h := tr.Width(), tr.Height()
		if w < 1 || h < 1 || w > n || h > n || w*h < n {
			return false
		}
		// Conduction is preserved by cloning.
		vals := map[string]bool{}
		for _, s := range "abcdef" {
			vals[string(s)] = rng.Intn(2) == 0
		}
		return tr.Conducts(vals) == tr.Clone().Conducts(vals)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
