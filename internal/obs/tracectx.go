package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// TraceparentHeader is the HTTP header carrying a TraceContext between
// processes (soimap → soirouter → soimapd → peer replica). The format is
// the W3C traceparent layout: "00-<32 hex trace id>-<16 hex span id>-<2
// hex flags>", flags bit 0 = sampled.
const TraceparentHeader = "traceparent"

// TraceContext identifies one distributed trace and the caller's position
// in it. TraceID names the whole request tree; SpanID is the span that
// any span started under this context becomes a child of. The zero value
// is "not traced". Trace context rides HTTP headers and context.Context
// only — it must never enter cache keys or routing keys (DESIGN.md §14).
type TraceContext struct {
	TraceID string
	SpanID  string
	Sampled bool
}

// Valid reports whether the context carries well-formed identifiers.
func (tc TraceContext) Valid() bool {
	return isHex(tc.TraceID, 32) && isHex(tc.SpanID, 16)
}

// Traceparent renders the context as a traceparent header value.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// ParseTraceparent parses a traceparent header value. It accepts only
// version 00 and lower-case hex; anything else reports ok=false, which
// callers treat as "not traced" rather than an error.
func ParseTraceparent(h string) (TraceContext, bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	tid, sid, flags := h[3:35], h[36:52], h[53:55]
	if !isHex(tid, 32) || !isHex(sid, 16) || !isHex(flags, 2) {
		return TraceContext{}, false
	}
	// All-zero ids are invalid per the W3C spec.
	if tid == "00000000000000000000000000000000" || sid == "0000000000000000" {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: tid, SpanID: sid, Sampled: flags[1]&1 == 1}, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewTraceContext mints a fresh sampled root context.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
}

// NewTraceID returns a random 32-hex-digit trace identifier.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a random 16-hex-digit span identifier.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on the supported platforms; a counter
		// fallback keeps ids unique (not unguessable) if it ever does.
		fallbackMu.Lock()
		fallbackCtr++
		v := fallbackCtr
		fallbackMu.Unlock()
		for i := range b {
			b[i] = byte(v >> (8 * (i % 8)))
		}
	}
	return hex.EncodeToString(b)
}

var (
	fallbackMu  sync.Mutex
	fallbackCtr uint64
)

// ValidRequestID reports whether an X-Request-ID received from a client
// is safe to adopt: non-empty, bounded, and free of characters that
// could corrupt log lines or headers. soimapd and soirouter mint their
// own id when the incoming one fails this check.
func ValidRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// Span is one completed distributed-trace span with absolute wall-clock
// timestamps, so spans recorded by different processes stitch into one
// timeline. This is the wire format of GET /v1/traces/{id}?raw=1 — the
// router fetches raw spans from every replica and renders the union.
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Process  string `json:"process"`
	Cat      string `json:"cat"`
	Name     string `json:"name"`
	StartUS  int64  `json:"start_us"` // µs since the Unix epoch
	DurUS    int64  `json:"dur_us"`
	Args     []KV   `json:"args,omitempty"`
}

// TraceHub retains the distributed-trace spans recorded by one process,
// keyed by trace id, bounded FIFO. All methods are nil-receiver safe, so
// an untraced deployment pays one branch per call site.
type TraceHub struct {
	process string
	max     int

	mu     sync.Mutex
	traces map[string][]Span
	order  []string
}

// NewTraceHub builds a hub identified as process (the Perfetto process
// name) retaining at most maxTraces distinct trace ids (≤0 → 64); the
// oldest trace is evicted when a new id arrives at capacity.
func NewTraceHub(process string, maxTraces int) *TraceHub {
	if maxTraces <= 0 {
		maxTraces = 64
	}
	return &TraceHub{process: process, max: maxTraces, traces: make(map[string][]Span)}
}

// Process returns the hub's process name ("" on nil).
func (h *TraceHub) Process() string {
	if h == nil {
		return ""
	}
	return h.process
}

// Add records one span. Spans without a valid trace id are dropped.
func (h *TraceHub) Add(s Span) {
	if h == nil || !isHex(s.TraceID, 32) {
		return
	}
	if s.Process == "" {
		s.Process = h.process
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.traces[s.TraceID]; !ok {
		if len(h.order) >= h.max {
			delete(h.traces, h.order[0])
			h.order = h.order[1:]
		}
		h.order = append(h.order, s.TraceID)
	}
	h.traces[s.TraceID] = append(h.traces[s.TraceID], s)
}

// Spans returns a copy of the spans recorded under traceID (nil if the
// trace is unknown or the hub is nil).
func (h *TraceHub) Spans(traceID string) []Span {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	spans := h.traces[traceID]
	if len(spans) == 0 {
		return nil
	}
	out := make([]Span, len(spans))
	copy(out, spans)
	return out
}

// Len returns the number of distinct traces retained.
func (h *TraceHub) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.traces)
}

// Record appends one span measured externally (e.g. queue wait computed
// from job timestamps). The span's parent is tc.SpanID. No-op when the
// hub is nil or the context is unsampled/invalid.
func (h *TraceHub) Record(tc TraceContext, cat, name string, start time.Time, d time.Duration, kv ...KV) {
	if h == nil || !tc.Sampled || !tc.Valid() {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Add(Span{
		TraceID:  tc.TraceID,
		SpanID:   NewSpanID(),
		ParentID: tc.SpanID,
		Process:  h.process,
		Cat:      cat,
		Name:     name,
		StartUS:  start.UnixMicro(),
		DurUS:    d.Microseconds(),
		Args:     kv,
	})
}

// ActiveSpan is an open span returned by StartSpan; End records it. All
// methods accept a nil receiver (the unsampled span).
type ActiveSpan struct {
	hub    *TraceHub
	tc     TraceContext // SpanID = this span's own id
	parent string
	cat    string
	name   string
	start  time.Time
}

// StartSpan opens a span as a child of the context's trace context and
// returns a derived context whose trace context parents under the new
// span — downstream StartSpan calls and outgoing traceparent headers
// nest correctly. When the hub is nil or the context is unsampled the
// original context and a nil span are returned.
func (h *TraceHub) StartSpan(ctx context.Context, cat, name string) (context.Context, *ActiveSpan) {
	tc := TraceContextFrom(ctx)
	if h == nil || !tc.Sampled || !tc.Valid() {
		return ctx, nil
	}
	child := TraceContext{TraceID: tc.TraceID, SpanID: NewSpanID(), Sampled: true}
	sp := &ActiveSpan{
		hub:   h,
		tc:    child,
		cat:   cat,
		name:  name,
		start: time.Now(),
	}
	sp.parent = tc.SpanID
	return WithTraceContext(ctx, child), sp
}

// ID returns the span's own id ("" on nil), the parent id for spans
// exported on its behalf by another component.
func (a *ActiveSpan) ID() string {
	if a == nil {
		return ""
	}
	return a.tc.SpanID
}

// Context returns the span's trace context (zero on nil).
func (a *ActiveSpan) Context() TraceContext {
	if a == nil {
		return TraceContext{}
	}
	return a.tc
}

// End records the span with the given args. Safe on nil; calling End
// twice records the span twice, so call it once.
func (a *ActiveSpan) End(kv ...KV) {
	if a == nil {
		return
	}
	a.hub.Add(Span{
		TraceID:  a.tc.TraceID,
		SpanID:   a.tc.SpanID,
		ParentID: a.parent,
		Process:  a.hub.process,
		Cat:      a.cat,
		Name:     a.name,
		StartUS:  a.start.UnixMicro(),
		DurUS:    time.Since(a.start).Microseconds(),
		Args:     kv,
	})
}

// ExportSpans converts the tracer's in-process events (phase spans from
// the report pipeline and mapper engine, relative-timestamped) into
// distributed Spans parented under tc.SpanID, using the tracer's start
// time to place them on the absolute timeline. Instants export as
// zero-duration spans. Nil tracer or unsampled context → nil.
func (t *Tracer) ExportSpans(tc TraceContext, process string) []Span {
	if t == nil || !tc.Sampled || !tc.Valid() {
		return nil
	}
	t.mu.Lock()
	events := t.events
	t.mu.Unlock()
	if len(events) == 0 {
		return nil
	}
	base := t.start.UnixMicro()
	out := make([]Span, 0, len(events))
	for _, ev := range events {
		out = append(out, Span{
			TraceID:  tc.TraceID,
			SpanID:   NewSpanID(),
			ParentID: tc.SpanID,
			Process:  process,
			Cat:      ev.cat,
			Name:     ev.name,
			StartUS:  base + ev.ts,
			DurUS:    ev.dur,
			Args:     ev.args,
		})
	}
	return out
}

// chromeSpanEvent is the Chrome trace-event rendering of one Span.
type chromeSpanEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeMetaEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteSpans renders a set of distributed spans — typically the union of
// several processes' hubs for one trace id — as a Chrome trace-event
// JSON object. Each distinct Process gets its own pid (assigned in
// sorted order, so the rendering is deterministic for a fixed span set)
// with a process_name metadata record; spans sort by (pid, start, span
// id). Timestamps stay absolute epoch-µs, which Perfetto normalizes.
func WriteSpans(w io.Writer, spans []Span) error {
	procs := map[string]int{}
	var names []string
	for _, s := range spans {
		if _, ok := procs[s.Process]; !ok {
			procs[s.Process] = 0
			names = append(names, s.Process)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		procs[n] = i + 1
	}

	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if pa, pb := procs[a.Process], procs[b.Process]; pa != pb {
			return pa < pb
		}
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		return a.SpanID < b.SpanID
	})

	events := make([]any, 0, len(sorted)+len(names))
	for _, n := range names {
		events = append(events, chromeMetaEvent{
			Name: "process_name", Ph: "M", Pid: procs[n], Tid: 1,
			Args: map[string]any{"name": n},
		})
	}
	for _, s := range sorted {
		args := map[string]any{"span_id": s.SpanID}
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		for _, kv := range s.Args {
			args[kv.Key] = kv.Val
		}
		events = append(events, chromeSpanEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Pid: procs[s.Process], Tid: 1,
			TS: s.StartUS, Dur: s.DurUS, Args: args,
		})
	}

	doc := struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
