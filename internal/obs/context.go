package obs

import "context"

type ctxKey uint8

const (
	statsKey ctxKey = iota
	tracerKey
	requestIDKey
	traceCtxKey
)

// WithStats attaches a per-run stats collector to the context. The mapper
// engine and report.PrepareNetworkContext record into it; a context
// without one (or with nil) disables collection.
func WithStats(ctx context.Context, s *Stats) context.Context {
	return context.WithValue(ctx, statsKey, s)
}

// StatsFrom returns the context's stats collector, or nil (the disabled
// collector — every Stats method accepts a nil receiver).
func StatsFrom(ctx context.Context) *Stats {
	s, _ := ctx.Value(statsKey).(*Stats)
	return s
}

// WithTracer attaches a span tracer to the context.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil (disabled).
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRequestID attaches a request identifier to the context. soimapd's
// request-logging middleware sets one per HTTP request and the job runner
// re-attaches it to the mapping context, so slog lines, job lifecycle
// events and mapper trace metadata all correlate on the same id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request identifier, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// WithTraceContext attaches a distributed-trace context. The HTTP
// middleware sets it from an incoming traceparent header (or a local
// sampling decision); TraceHub.StartSpan re-attaches a child context so
// nested spans and outgoing headers parent correctly.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey, tc)
}

// TraceContextFrom returns the context's trace context, or the zero
// (untraced) value.
func TraceContextFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey).(TraceContext)
	return tc
}
