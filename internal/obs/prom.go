package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders the Prometheus text exposition format (version
// 0.0.4, what a Prometheus scraper and promtool accept). It is a thin
// stateful writer: open a metric family with Family, then emit its series
// with Sample; the first error sticks and is returned by Err.
//
// The stdlib has no Prometheus client and this repo takes no
// dependencies, so soimapd translates its expvar counters and histograms
// through this writer at /metrics.
type PromWriter struct {
	w      io.Writer
	err    error
	opened map[string]bool
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, opened: make(map[string]bool)}
}

// ContentType is the HTTP Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family emits the HELP/TYPE header for a metric family. typ is
// "counter", "gauge" or "histogram". Re-opening an already-open family is
// a no-op so callers can interleave per-label emission loops.
func (p *PromWriter) Family(name, typ, help string) {
	if p.opened[name] {
		return
	}
	p.opened[name] = true
	if help != "" {
		p.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one series of the most recently opened family. labels is
// a flat key, value, key, value... list; an odd trailing key is dropped.
func (p *PromWriter) Sample(name string, value float64, labels ...string) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatValue(value))
}

// Histogram emits a full fixed-bucket histogram family entry: cumulative
// _bucket series per upper bound (plus +Inf), then _sum and _count.
// bounds and counts are parallel; counts must have one extra overflow
// slot. baseLabels apply to every series.
func (p *PromWriter) Histogram(name string, bounds []int64, counts []int64, sum, count int64, baseLabels ...string) {
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		p.Sample(name+"_bucket", float64(cum), append(append([]string{}, baseLabels...), "le", strconv.FormatInt(b, 10))...)
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	p.Sample(name+"_bucket", float64(cum), append(append([]string{}, baseLabels...), "le", "+Inf")...)
	p.Sample(name+"_sum", float64(sum), baseLabels...)
	p.Sample(name+"_count", float64(count), baseLabels...)
}

func renderLabels(labels []string) string {
	if len(labels) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q produces exactly the exposition format's label escaping
		// (backslash, quote and newline).
		fmt.Fprintf(&b, `%s=%q`, labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SortedKeys returns m's keys sorted, the deterministic iteration order
// every /metrics render uses (scrapes must be stable for golden tests and
// sane diffs).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
