package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

const (
	testTID = "0123456789abcdef0123456789abcdef"
	testSID = "0123456789abcdef"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() || !tc.Sampled {
		t.Fatalf("NewTraceContext() = %+v, want valid and sampled", tc)
	}
	got, ok := ParseTraceparent(tc.Traceparent())
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%t, want %+v", got, ok, tc)
	}
	tc.Sampled = false
	got, ok = ParseTraceparent(tc.Traceparent())
	if !ok || got != tc {
		t.Fatalf("unsampled round trip: got %+v ok=%t, want %+v", got, ok, tc)
	}
	if h := tc.Traceparent(); !strings.HasSuffix(h, "-00") {
		t.Fatalf("unsampled flags: %q", h)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-" + testTID + "-" + testSID + "-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("fixture %q must parse", valid)
	}
	bad := []string{
		"",
		"00",
		valid[:54],  // one byte short
		valid + "0", // one byte long
		"01" + valid[2:],       // unknown version
		strings.ToUpper(valid), // upper-case hex
		"00-00000000000000000000000000000000-" + testSID + "-01", // zero trace id
		"00-" + testTID + "-0000000000000000-01",                 // zero span id
		"00_" + testTID + "-" + testSID + "-01",                  // bad separator
		"00-" + testTID[:31] + "g-" + testSID + "-01",            // non-hex digit
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestValidRequestID(t *testing.T) {
	for _, id := range []string{"r000001", "rr42.abc", "a_b-c:d", "X9"} {
		if !ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = false", id)
		}
	}
	for _, id := range []string{"", strings.Repeat("a", 65), "has space", "bad\nnewline", `quo"te`} {
		if ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = true", id)
		}
	}
}

func testTraceID(i byte) string { return strings.Repeat(fmt.Sprintf("%02x", i), 16) }

func TestTraceHubFIFOEviction(t *testing.T) {
	h := NewTraceHub("p", 2)
	t1, t2, t3 := testTraceID(1), testTraceID(2), testTraceID(3)
	h.Add(Span{TraceID: t1, SpanID: testSID, Name: "a"})
	h.Add(Span{TraceID: t2, SpanID: testSID, Name: "b"})
	h.Add(Span{TraceID: t2, SpanID: testSID, Name: "b2"}) // same trace: no eviction
	h.Add(Span{TraceID: "not-a-trace-id"})                // invalid: dropped
	if h.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", h.Len())
	}
	h.Add(Span{TraceID: t3, SpanID: testSID, Name: "c"}) // at capacity: evicts t1
	if h.Len() != 2 {
		t.Fatalf("Len() after eviction = %d, want 2", h.Len())
	}
	if got := h.Spans(t1); got != nil {
		t.Fatalf("evicted trace still present: %v", got)
	}
	if got := h.Spans(t2); len(got) != 2 {
		t.Fatalf("survivor trace spans = %v, want 2", got)
	}
	if got := h.Spans(t3); len(got) != 1 || got[0].Process != "p" {
		t.Fatalf("new trace spans = %+v, want 1 span with the hub's process filled in", got)
	}
}

func TestStartSpanNesting(t *testing.T) {
	h := NewTraceHub("svc", 4)
	root := NewTraceContext()
	ctx := WithTraceContext(context.Background(), root)

	ctx1, outer := h.StartSpan(ctx, "c", "outer")
	if outer == nil || TraceContextFrom(ctx1).SpanID != outer.ID() {
		t.Fatal("derived context must parent under the new span")
	}
	ctx2, inner := h.StartSpan(ctx1, "c", "inner")
	_ = ctx2
	inner.End()
	outer.End(KV{Key: "k", Val: 1})

	spans := h.Spans(root.TraceID)
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["outer"].ParentID != root.SpanID {
		t.Fatalf("outer parent %q, want the root context's span %q", byName["outer"].ParentID, root.SpanID)
	}
	if byName["inner"].ParentID != outer.ID() {
		t.Fatalf("inner parent %q, want outer span %q", byName["inner"].ParentID, outer.ID())
	}

	// Unsampled context: no span, original context, End is a no-op.
	plain := context.Background()
	gotCtx, sp := h.StartSpan(plain, "c", "untraced")
	if sp != nil || gotCtx != plain {
		t.Fatal("unsampled StartSpan must return (same ctx, nil)")
	}
	sp.End()

	// Nil hub: everything is inert.
	var nh *TraceHub
	_, nsp := nh.StartSpan(ctx, "c", "x")
	nsp.End()
	nh.Record(root, "c", "x", time.Now(), time.Second)
	nh.Add(Span{TraceID: root.TraceID})
	if nh.Len() != 0 || nh.Spans(root.TraceID) != nil || nh.Process() != "" {
		t.Fatal("nil hub must be inert")
	}

	// Unsampled Record is a no-op; negative durations clamp to zero.
	h.Record(TraceContext{TraceID: root.TraceID, SpanID: root.SpanID}, "c", "skip", time.Now(), time.Second)
	h.Record(root, "c", "clamped", time.Now(), -time.Second)
	spans = h.Spans(root.TraceID)
	for _, s := range spans {
		if s.Name == "skip" {
			t.Fatal("unsampled Record must not record")
		}
		if s.Name == "clamped" && s.DurUS != 0 {
			t.Fatalf("negative duration recorded as %dµs, want 0", s.DurUS)
		}
	}
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
}

func TestTracerExportSpans(t *testing.T) {
	tr := NewTracer(1)
	tr.Span("pipeline", "strash net", tr.Now())
	tr.Span("mapper", "soi dp", tr.Now(), KV{Key: "kept", Val: 7})
	tc := NewTraceContext()
	spans := tr.ExportSpans(tc, "replica-0")
	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.TraceID != tc.TraceID || s.ParentID != tc.SpanID || s.Process != "replica-0" {
			t.Fatalf("span %+v not parented under %+v", s, tc)
		}
		if s.StartUS <= 0 {
			t.Fatalf("span %q has relative timestamp %d, want absolute epoch µs", s.Name, s.StartUS)
		}
	}

	if got := tr.ExportSpans(TraceContext{}, "p"); got != nil {
		t.Fatalf("unsampled export = %v, want nil", got)
	}
	var nilTr *Tracer
	if got := nilTr.ExportSpans(tc, "p"); got != nil {
		t.Fatalf("nil tracer export = %v, want nil", got)
	}
}

func TestWriteSpansDeterministicChrome(t *testing.T) {
	// Deliberately out of order: process "b" first, later start first.
	spans := []Span{
		{TraceID: testTID, SpanID: "000000000000000b", Process: "b", Cat: "svc", Name: "late", StartUS: 200, DurUS: 5},
		{TraceID: testTID, SpanID: "000000000000000a", Process: "b", Cat: "svc", Name: "early", StartUS: 100, DurUS: 5, ParentID: testSID},
		{TraceID: testTID, SpanID: "000000000000000c", Process: "a", Cat: "rt", Name: "root", StartUS: 150, DurUS: 50, Args: []KV{{Key: "failover", Val: 1}}},
	}
	var buf1, buf2 bytes.Buffer
	if err := WriteSpans(&buf1, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpans(&buf2, spans); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("WriteSpans is not deterministic for a fixed span set")
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			TS   int64          `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf1.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 5 { // 2 process_name metas + 3 spans
		t.Fatalf("rendered %d events, want 5", len(doc.TraceEvents))
	}
	// Metadata first; processes get pids in sorted-name order.
	procByPid := map[int]string{}
	for _, e := range doc.TraceEvents[:2] {
		if e.Ph != "M" || e.Name != "process_name" {
			t.Fatalf("event %+v, want process_name metadata first", e)
		}
		procByPid[e.Pid] = e.Args["name"].(string)
	}
	if procByPid[1] != "a" || procByPid[2] != "b" {
		t.Fatalf("pid assignment %v, want a=1, b=2 (sorted)", procByPid)
	}
	// Spans sorted by (pid, start): a/root, then b/early, b/late.
	var order []string
	for _, e := range doc.TraceEvents[2:] {
		if e.Ph != "X" {
			t.Fatalf("span event %+v, want ph X", e)
		}
		order = append(order, e.Name)
	}
	if order[0] != "root" || order[1] != "early" || order[2] != "late" {
		t.Fatalf("span order %v, want [root early late]", order)
	}
	// Span args carry identity plus the recorded KVs.
	rootArgs := doc.TraceEvents[2].Args
	if rootArgs["span_id"] != "000000000000000c" || rootArgs["failover"] != float64(1) {
		t.Fatalf("root span args %v", rootArgs)
	}
	earlyArgs := doc.TraceEvents[3].Args
	if earlyArgs["parent_id"] != testSID {
		t.Fatalf("early span args %v, want parent_id %s", earlyArgs, testSID)
	}
}
