package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the build identity reported by soimapd's /healthz and
// `soimap -version`: module path and version, the Go toolchain, and the
// VCS state stamped by `go build` when the module is built inside a
// repository.
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

var buildOnce = sync.OnceValue(func() BuildInfo {
	b := BuildInfo{
		Module:    "soidomino",
		Version:   "(devel)",
		GoVersion: runtime.Version(),
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Path != "" {
		b.Module = info.Main.Path
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
})

// Build returns the process's build information (computed once).
func Build() BuildInfo { return buildOnce() }

// String renders the one-line form printed by `soimap -version`.
func (b BuildInfo) String() string {
	s := fmt.Sprintf("%s %s (%s)", b.Module, b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if b.Dirty {
			s += "+dirty"
		}
	}
	return s
}
