package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// KV is one integer argument attached to a trace event. Chrome's trace
// format allows arbitrary JSON args; the DP only ever attaches counters,
// so a flat int pair keeps event recording allocation-light.
type KV struct {
	Key string
	Val int64
}

// traceEvent is one Chrome trace-event record. Only "complete" (ph "X")
// and "instant" (ph "i") events are emitted; timestamps and durations are
// microseconds from the tracer's start, which is what Perfetto expects.
type traceEvent struct {
	name string
	cat  string
	ph   byte
	ts   int64 // µs since tracer start
	dur  int64 // µs, complete events only
	args []KV
}

// Tracer records spans of one (or several sequential) mapping runs and
// writes them as Chrome trace-event JSON, loadable at ui.perfetto.dev or
// chrome://tracing. Recording methods are nil-receiver safe; a nil
// *Tracer is the disabled tracer. The tracer is internally locked so the
// daemon can share one across phases, but per-node DP events come from a
// single goroutine in practice.
type Tracer struct {
	start  time.Time
	sample int

	mu     sync.Mutex
	events []traceEvent
}

// NewTracer builds a tracer that records every sampleEvery-th per-node DP
// event (1 or less records all of them). Phase spans and instants are
// never sampled away — a full trace of an MCNC-sized circuit is a few
// thousand events, but the per-node firehose is what the knob bounds.
func NewTracer(sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{start: time.Now(), sample: sampleEvery}
}

// SampleNode reports whether per-node events for node id should be
// recorded under the sampling knob.
func (t *Tracer) SampleNode(id int) bool {
	return t != nil && (t.sample <= 1 || id%t.sample == 0)
}

// Now returns the tracer's clock reading, the start argument for a later
// Span. The zero time is returned on a nil tracer so disabled call sites
// stay branch-free.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records a completed span from start to now. kv values are attached
// as event args (shown in the Perfetto side panel).
func (t *Tracer) Span(cat, name string, start time.Time, kv ...KV) {
	if t == nil {
		return
	}
	now := time.Now()
	ev := traceEvent{
		name: name,
		cat:  cat,
		ph:   'X',
		ts:   start.Sub(t.start).Microseconds(),
		dur:  now.Sub(start).Microseconds(),
		args: kv,
	}
	if ev.ts < 0 {
		ev.ts = 0
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// PendingSpan is a completed span that has been measured but not yet
// appended to the tracer's event buffer. The parallel DP engine captures
// per-node spans into per-worker buffers and emits them in node order
// after the pool drains, so a trace is byte-identical regardless of the
// worker count. The zero PendingSpan is inert: Emit ignores it.
type PendingSpan struct {
	ev traceEvent
	ok bool
}

// Capture measures a span from start to now and returns it without
// recording it; pass the result to Emit to append it later. A nil tracer
// returns the inert zero PendingSpan.
func (t *Tracer) Capture(cat, name string, start time.Time, kv ...KV) PendingSpan {
	if t == nil {
		return PendingSpan{}
	}
	now := time.Now()
	ev := traceEvent{
		name: name,
		cat:  cat,
		ph:   'X',
		ts:   start.Sub(t.start).Microseconds(),
		dur:  now.Sub(start).Microseconds(),
		args: kv,
	}
	if ev.ts < 0 {
		ev.ts = 0
	}
	return PendingSpan{ev: ev, ok: true}
}

// Emit appends a captured span to the event buffer. Inert spans (from a
// zero value, a nil tracer's Capture, or a sampled-out node) are ignored,
// so callers can emit unconditionally.
func (t *Tracer) Emit(p PendingSpan) {
	if t == nil || !p.ok {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, p.ev)
	t.mu.Unlock()
}

// Instant records a zero-duration marker event.
func (t *Tracer) Instant(cat, name string, kv ...KV) {
	if t == nil {
		return
	}
	ev := traceEvent{
		name: name,
		cat:  cat,
		ph:   'i',
		ts:   time.Since(t.start).Microseconds(),
		args: kv,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteTo renders the recorded events as a Chrome trace-event JSON object
// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	if t == nil {
		n, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return int64(n), err
	}
	t.mu.Lock()
	events := t.events
	t.mu.Unlock()

	var total int64
	emit := func(s string) error {
		n, err := io.WriteString(w, s)
		total += int64(n)
		return err
	}
	if err := emit(`{"traceEvents":[` + "\n"); err != nil {
		return total, err
	}
	for i, ev := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		if err := emit(marshalEvent(ev) + sep + "\n"); err != nil {
			return total, err
		}
	}
	err := emit(`],"displayTimeUnit":"ms"}` + "\n")
	return total, err
}

// marshalEvent renders one event. Hand-assembled from json-marshaled
// fragments so arg order follows the recording order (a map would
// alphabetize it).
func marshalEvent(ev traceEvent) string {
	name, _ := json.Marshal(ev.name)
	cat, _ := json.Marshal(ev.cat)
	s := fmt.Sprintf(`{"name":%s,"cat":%s,"ph":%q,"pid":1,"tid":1,"ts":%d`,
		name, cat, string(ev.ph), ev.ts)
	if ev.ph == 'X' {
		s += fmt.Sprintf(`,"dur":%d`, ev.dur)
	}
	if ev.ph == 'i' {
		s += `,"s":"g"` // global instant scope
	}
	if len(ev.args) > 0 {
		s += `,"args":{`
		for i, kv := range ev.args {
			if i > 0 {
				s += ","
			}
			k, _ := json.Marshal(kv.Key)
			s += fmt.Sprintf(`%s:%d`, k, kv.Val)
		}
		s += "}"
	}
	return s + "}"
}
