package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestNilStatsIsDisabledCollector pins the nil-receiver contract: every
// recording method must be a no-op on a nil *Stats, because that is how
// the hot DP loop runs when instrumentation is off.
func TestNilStatsIsDisabledCollector(t *testing.T) {
	var s *Stats
	if s.Enabled() {
		t.Fatal("nil Stats reports Enabled")
	}
	s.AddNode(7)
	s.AddCombine(true, false, 3)
	s.AddCancelCheck()
	s.SetAlgorithm("x")
	s.AddPhase(PhaseDP, time.Second)
	s.Merge(&Stats{Nodes: 1})
	if got := s.String(); got != "stats: disabled" {
		t.Fatalf("nil Stats String = %q", got)
	}
}

func TestStatsCounters(t *testing.T) {
	s := &Stats{}
	// Two combines for a node that keeps one tuple: one pruned.
	s.AddCombine(true, false, 0)
	s.AddCombine(false, true, 2)
	s.AddNode(1)
	// A second node keeps three of three.
	s.AddCombine(false, false, 1)
	s.AddCombine(false, false, 0)
	s.AddCombine(true, false, 0)
	s.AddNode(3)

	if s.Nodes != 2 {
		t.Errorf("Nodes = %d, want 2", s.Nodes)
	}
	if s.TuplesGenerated != 5 || s.TuplesKept != 4 || s.TuplesPruned != 1 {
		t.Errorf("tuples = %d gen / %d kept / %d pruned, want 5/4/1",
			s.TuplesGenerated, s.TuplesKept, s.TuplesPruned)
	}
	if s.CombineOr != 2 || s.CombineAndOrdered != 2 || s.CombineAndReordered != 1 {
		t.Errorf("combines = %d or / %d ordered / %d reordered, want 2/2/1",
			s.CombineOr, s.CombineAndOrdered, s.CombineAndReordered)
	}
	if s.DPDischargeCharges != 3 {
		t.Errorf("DPDischargeCharges = %d, want 3", s.DPDischargeCharges)
	}
	if s.FrontierHighWater != 3 {
		t.Errorf("FrontierHighWater = %d, want 3", s.FrontierHighWater)
	}
}

func TestStatsMerge(t *testing.T) {
	a := &Stats{Nodes: 2, TuplesGenerated: 10, TuplesKept: 6, TuplesPruned: 4,
		FrontierHighWater: 3, Phases: PhaseTimes{DP: time.Millisecond}}
	b := &Stats{Nodes: 5, TuplesGenerated: 1, TuplesKept: 1,
		FrontierHighWater: 9, Phases: PhaseTimes{DP: 2 * time.Millisecond}}
	a.Merge(b)
	if a.Nodes != 7 || a.TuplesGenerated != 11 || a.TuplesKept != 7 || a.TuplesPruned != 4 {
		t.Errorf("merged counters wrong: %+v", a)
	}
	if a.FrontierHighWater != 9 {
		t.Errorf("FrontierHighWater = %d, want max(3,9)=9", a.FrontierHighWater)
	}
	if a.Phases.DP != 3*time.Millisecond {
		t.Errorf("Phases.DP = %v, want 3ms", a.Phases.DP)
	}
}

func TestStatsString(t *testing.T) {
	s := &Stats{Algorithm: "SOI_Domino_Map", Nodes: 4, TuplesGenerated: 9,
		TuplesKept: 5, TuplesPruned: 4}
	got := s.String()
	for _, want := range []string{"stats (SOI_Domino_Map):", "nodes", "9 generated, 4 pruned, 5 kept"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() missing %q:\n%s", want, got)
		}
	}
}

func TestTimed(t *testing.T) {
	s := &Stats{}
	sentinel := errors.New("boom")
	if err := Timed(s, PhaseTraceback, func() error { return sentinel }); err != sentinel {
		t.Fatalf("Timed err = %v, want sentinel", err)
	}
	if s.Phases.Traceback <= 0 {
		t.Errorf("Traceback phase not charged: %v", s.Phases.Traceback)
	}
	// Nil collector: f still runs, error still propagates.
	ran := false
	if err := Timed(nil, PhaseDP, func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("Timed(nil) ran=%v err=%v", ran, err)
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseDecompose: "decompose", PhaseUnate: "unate",
		PhaseDP: "dp", PhaseTraceback: "traceback",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}
