// Package obs is the observability layer of the mapping stack: a per-run
// dynamic-programming statistics collector (Stats), a sampling span tracer
// that emits Chrome trace-event JSON loadable in Perfetto (Tracer), a
// minimal Prometheus text-exposition writer (PromWriter) and the build
// information surfaced by soimapd's /healthz and `soimap -version`.
//
// Everything here is opt-in and allocation-light. The collectors ride
// through a context.Context (WithStats, WithTracer); producers hold plain
// pointers and every recording method is safe on a nil receiver, so the
// disabled path costs one predictable branch and no allocation — see the
// "zero cost when disabled" note in DESIGN.md and the env-gated
// TestStatsOverhead guard wired into `make check`.
package obs

import (
	"fmt"
	"strings"
	"time"
)

// PhaseTimes records the monotonic wall-clock cost of the pipeline
// phases around one mapping run. Strash, Decompose and Unate are filled
// by report.PrepareNetworkContext; DP and Traceback by the mapper engine.
type PhaseTimes struct {
	Strash    time.Duration `json:"strash"`
	Decompose time.Duration `json:"decompose"`
	Unate     time.Duration `json:"unate"`
	DP        time.Duration `json:"dp"`
	Traceback time.Duration `json:"traceback"`
	Audit     time.Duration `json:"audit"`
}

// Stats is the per-run instrumentation record of one mapping run. The
// fields are plain integers written from a single goroutine: concurrent
// runs must each carry their own Stats, and the parallel DP engine gives
// each worker a private shard, merged with Merge after the pool drains
// (every counter is commutative and the high-water mark is a max, so the
// merged totals equal a sequential run's). All recording methods are
// nil-receiver safe: a nil *Stats is the disabled collector.
type Stats struct {
	// Algorithm is the engine's name for the run (e.g. "SOI_Domino_Map").
	Algorithm string `json:"algorithm,omitempty"`
	// Nodes counts And/Or nodes processed by the DP loop.
	Nodes int64 `json:"nodes"`
	// TuplesGenerated counts every tuple produced by a combine call;
	// TuplesKept is the number surviving in the node's table or frontier
	// when the node completes, and TuplesPruned is the difference —
	// bounds-rejected, dominated, or displaced by a better tuple.
	TuplesGenerated int64 `json:"tuples_generated"`
	TuplesPruned    int64 `json:"tuples_pruned"`
	TuplesKept      int64 `json:"tuples_kept"`
	// Combine calls by kind. An AND whose stack kept the source operand
	// order counts as ordered; a flipped stack counts as reordered (the
	// SOI par_b/p_dis ordering, the hashed baseline order, or the Pareto
	// mode's exploration of the second order).
	CombineOr           int64 `json:"combine_or"`
	CombineAndOrdered   int64 `json:"combine_and_ordered"`
	CombineAndReordered int64 `json:"combine_and_reordered"`
	// FrontierHighWater is the largest tuple population any single node
	// held (table entries, or frontier entries across all FKeys).
	FrontierHighWater int64 `json:"frontier_high_water"`
	// DPDischargeCharges counts p-discharge devices charged while
	// evaluating AND combinations (a series composition burying a
	// parallel bottom materializes its potential points plus the new
	// junction). Candidates later pruned still count: this measures DP
	// work, not the final netlist — the mapped circuit's discharge count
	// is Result.Stats.TDisch.
	DPDischargeCharges int64 `json:"dp_discharge_charges"`
	// CancelChecks counts context cancellation checkpoints observed.
	CancelChecks int64 `json:"cancel_checks"`
	// Strash front-end reductions (internal/strash), recorded by the
	// pipeline before decompose: gate nodes hash-consed onto an existing
	// structural twin, nodes simplified away by constant folding /
	// buffer collapse / double negation, and nodes removed by the DCE
	// sweep because no primary output reaches them.
	StrashMerged int64 `json:"strash_merged"`
	StrashFolded int64 `json:"strash_folded"`
	StrashDead   int64 `json:"strash_dead"`

	Phases PhaseTimes `json:"phases"`
}

// Enabled reports whether the collector records anything.
func (s *Stats) Enabled() bool { return s != nil }

// AddNode records one DP node with its surviving tuple population.
func (s *Stats) AddNode(kept int) {
	if s == nil {
		return
	}
	s.Nodes++
	s.TuplesKept += int64(kept)
	s.FrontierHighWater = max(s.FrontierHighWater, int64(kept))
	s.TuplesPruned = s.TuplesGenerated - s.TuplesKept
}

// AddCombine records one combine call. or selects the OR kind; reordered
// marks a series stack flipped from source-operand order; charges is the
// number of p-discharge devices the combination materialized.
func (s *Stats) AddCombine(or, reordered bool, charges int) {
	if s == nil {
		return
	}
	s.TuplesGenerated++
	switch {
	case or:
		s.CombineOr++
	case reordered:
		s.CombineAndReordered++
	default:
		s.CombineAndOrdered++
	}
	s.DPDischargeCharges += int64(charges)
}

// AddStrash records one strash front-end run's reduction counters.
func (s *Stats) AddStrash(merged, folded, dead int) {
	if s == nil {
		return
	}
	s.StrashMerged += int64(merged)
	s.StrashFolded += int64(folded)
	s.StrashDead += int64(dead)
}

// AddCancelCheck records one observed cancellation checkpoint.
func (s *Stats) AddCancelCheck() {
	if s == nil {
		return
	}
	s.CancelChecks++
}

// SetAlgorithm records the engine's algorithm name.
func (s *Stats) SetAlgorithm(name string) {
	if s == nil {
		return
	}
	s.Algorithm = name
}

// AddPhase accumulates one phase's wall-clock cost.
func (s *Stats) AddPhase(phase Phase, d time.Duration) {
	if s == nil {
		return
	}
	switch phase {
	case PhaseStrash:
		s.Phases.Strash += d
	case PhaseDecompose:
		s.Phases.Decompose += d
	case PhaseUnate:
		s.Phases.Unate += d
	case PhaseDP:
		s.Phases.DP += d
	case PhaseTraceback:
		s.Phases.Traceback += d
	case PhaseAudit:
		s.Phases.Audit += d
	}
}

// Merge adds o's counters and phase times into s (phase times add; the
// high-water mark takes the max). Used by soimapd to aggregate per-job
// runs into the per-algorithm totals served at /metrics.
func (s *Stats) Merge(o *Stats) {
	if s == nil || o == nil {
		return
	}
	s.Nodes += o.Nodes
	s.TuplesGenerated += o.TuplesGenerated
	s.TuplesPruned += o.TuplesPruned
	s.TuplesKept += o.TuplesKept
	s.CombineOr += o.CombineOr
	s.CombineAndOrdered += o.CombineAndOrdered
	s.CombineAndReordered += o.CombineAndReordered
	s.FrontierHighWater = max(s.FrontierHighWater, o.FrontierHighWater)
	s.DPDischargeCharges += o.DPDischargeCharges
	s.CancelChecks += o.CancelChecks
	s.StrashMerged += o.StrashMerged
	s.StrashFolded += o.StrashFolded
	s.StrashDead += o.StrashDead
	s.Phases.Strash += o.Phases.Strash
	s.Phases.Decompose += o.Phases.Decompose
	s.Phases.Unate += o.Phases.Unate
	s.Phases.DP += o.Phases.DP
	s.Phases.Traceback += o.Phases.Traceback
	s.Phases.Audit += o.Phases.Audit
}

// String renders the collector as the multi-line block `soimap -stats`
// prints.
func (s *Stats) String() string {
	if s == nil {
		return "stats: disabled"
	}
	var b strings.Builder
	if s.Algorithm != "" {
		fmt.Fprintf(&b, "stats (%s):\n", s.Algorithm)
	} else {
		b.WriteString("stats:\n")
	}
	fmt.Fprintf(&b, "  nodes            %d\n", s.Nodes)
	fmt.Fprintf(&b, "  tuples           %d generated, %d pruned, %d kept (high water %d/node)\n",
		s.TuplesGenerated, s.TuplesPruned, s.TuplesKept, s.FrontierHighWater)
	fmt.Fprintf(&b, "  combines         %d or, %d and-ordered, %d and-reordered\n",
		s.CombineOr, s.CombineAndOrdered, s.CombineAndReordered)
	fmt.Fprintf(&b, "  dp discharges    %d charged during combine evaluation\n", s.DPDischargeCharges)
	fmt.Fprintf(&b, "  cancel checks    %d\n", s.CancelChecks)
	fmt.Fprintf(&b, "  strash           %d merged, %d folded, %d dead removed\n",
		s.StrashMerged, s.StrashFolded, s.StrashDead)
	fmt.Fprintf(&b, "  phases           strash %v, decompose %v, unate %v, dp %v, traceback %v, audit %v",
		s.Phases.Strash.Round(time.Microsecond),
		s.Phases.Decompose.Round(time.Microsecond), s.Phases.Unate.Round(time.Microsecond),
		s.Phases.DP.Round(time.Microsecond), s.Phases.Traceback.Round(time.Microsecond),
		s.Phases.Audit.Round(time.Microsecond))
	return b.String()
}

// Timed runs f, charging its wall-clock cost to the stats phase. With a
// nil collector it calls f directly — no clock reads on the disabled
// path.
func Timed(s *Stats, p Phase, f func() error) error {
	if s == nil {
		return f()
	}
	start := time.Now()
	err := f()
	s.AddPhase(p, time.Since(start))
	return err
}

// Phase names one pipeline phase for AddPhase and trace spans.
type Phase uint8

const (
	PhaseDecompose Phase = iota
	PhaseUnate
	PhaseDP
	PhaseTraceback
	PhaseStrash
	PhaseAudit
)

func (p Phase) String() string {
	switch p {
	case PhaseStrash:
		return "strash"
	case PhaseAudit:
		return "audit"
	case PhaseDecompose:
		return "decompose"
	case PhaseUnate:
		return "unate"
	case PhaseDP:
		return "dp"
	default:
		return "traceback"
	}
}
