package obs

import (
	"bytes"
	"errors"
	"testing"
)

func TestPromWriter(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("jobs_total", "counter", "Jobs by outcome.")
	p.Sample("jobs_total", 3, "outcome", "done")
	p.Sample("jobs_total", 1.5, "outcome", `we"ird`)
	p.Family("jobs_total", "counter", "dup header must not repeat")
	p.Family("up", "gauge", "")
	p.Sample("up", 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs by outcome.
# TYPE jobs_total counter
jobs_total{outcome="done"} 3
jobs_total{outcome="we\"ird"} 1.5
# TYPE up gauge
up 1
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("lat_ms", "histogram", "")
	// bounds 1,5,25 with counts 2,0,3 and one overflow observation.
	p.Histogram("lat_ms", []int64{1, 5, 25}, []int64{2, 0, 3, 1}, 90, 6, "algorithm", "soi")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lat_ms histogram
lat_ms_bucket{algorithm="soi",le="1"} 2
lat_ms_bucket{algorithm="soi",le="5"} 2
lat_ms_bucket{algorithm="soi",le="25"} 5
lat_ms_bucket{algorithm="soi",le="+Inf"} 6
lat_ms_sum{algorithm="soi"} 90
lat_ms_count{algorithm="soi"} 6
`
	if got := buf.String(); got != want {
		t.Errorf("histogram mismatch:\n got: %q\nwant: %q", got, want)
	}
}

// TestPromWriterLabelEscaping pins the exposition format's label and
// help escaping: backslashes, quotes and newlines in label values must
// come out escaped (a raw newline would corrupt the whole scrape), and
// an odd trailing label key is dropped rather than rendered.
func TestPromWriterLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("esc_total", "counter", "help with \\back and\nnewline")
	p.Sample("esc_total", 1, "path", `C:\tmp`)
	p.Sample("esc_total", 2, "msg", "line1\nline2")
	p.Sample("esc_total", 3, "q", `say "hi"`)
	p.Sample("esc_total", 4, "odd")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP esc_total help with \\back and\nnewline
# TYPE esc_total counter
esc_total{path="C:\\tmp"} 1
esc_total{msg="line1\nline2"} 2
esc_total{q="say \"hi\""} 3
esc_total 4
`
	if got := buf.String(); got != want {
		t.Errorf("escaping mismatch:\n got: %q\nwant: %q", got, want)
	}
}

// TestPromWriterEmptyHistogram: a histogram family with no observations
// must still render every cumulative bucket plus _sum and _count as
// explicit zeros — scrapers treat a missing _count as a broken family.
func TestPromWriterEmptyHistogram(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("lat_ms", "histogram", "")
	p.Histogram("lat_ms", []int64{1, 10}, []int64{0, 0, 0}, 0, 0)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lat_ms histogram
lat_ms_bucket{le="1"} 0
lat_ms_bucket{le="10"} 0
lat_ms_bucket{le="+Inf"} 0
lat_ms_sum 0
lat_ms_count 0
`
	if got := buf.String(); got != want {
		t.Errorf("empty histogram mismatch:\n got: %q\nwant: %q", got, want)
	}
}

// TestPromWriterDeterministicOrder: rendering the same map-backed data
// through SortedKeys twice must produce byte-identical expositions in
// sorted label order (the property the /metrics golden tests rely on).
func TestPromWriterDeterministicOrder(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		p := NewPromWriter(&buf)
		m := map[string]float64{"zeta": 1, "alpha": 2, "mid": 3}
		p.Family("ordered_total", "counter", "")
		for _, k := range SortedKeys(m) {
			p.Sample("ordered_total", m[k], "name", k)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("renders differ:\n%q\n%q", a, b)
	}
	want := `# TYPE ordered_total counter
ordered_total{name="alpha"} 2
ordered_total{name="mid"} 3
ordered_total{name="zeta"} 1
`
	if a != want {
		t.Errorf("order mismatch:\n got: %q\nwant: %q", a, want)
	}
}

// TestPromWriterStickyError: the first write error sticks, later calls
// are no-ops, and Err reports it.
func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(failWriter{})
	p.Family("x_total", "counter", "h")
	p.Sample("x_total", 1)
	if p.Err() == nil {
		t.Fatal("Err() = nil, want the writer's error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = errors.New("sink closed")

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
