package obs

import (
	"bytes"
	"testing"
)

func TestPromWriter(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("jobs_total", "counter", "Jobs by outcome.")
	p.Sample("jobs_total", 3, "outcome", "done")
	p.Sample("jobs_total", 1.5, "outcome", `we"ird`)
	p.Family("jobs_total", "counter", "dup header must not repeat")
	p.Family("up", "gauge", "")
	p.Sample("up", 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs by outcome.
# TYPE jobs_total counter
jobs_total{outcome="done"} 3
jobs_total{outcome="we\"ird"} 1.5
# TYPE up gauge
up 1
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("lat_ms", "histogram", "")
	// bounds 1,5,25 with counts 2,0,3 and one overflow observation.
	p.Histogram("lat_ms", []int64{1, 5, 25}, []int64{2, 0, 3, 1}, 90, 6, "algorithm", "soi")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lat_ms histogram
lat_ms_bucket{algorithm="soi",le="1"} 2
lat_ms_bucket{algorithm="soi",le="5"} 2
lat_ms_bucket{algorithm="soi",le="25"} 5
lat_ms_bucket{algorithm="soi",le="+Inf"} 6
lat_ms_sum{algorithm="soi"} 90
lat_ms_count{algorithm="soi"} 6
`
	if got := buf.String(); got != want {
		t.Errorf("histogram mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
