package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// chromeTrace mirrors the subset of the Chrome trace-event format the
// tracer emits, for round-trip validation.
type chromeTrace struct {
	TraceEvents []struct {
		Name string           `json:"name"`
		Cat  string           `json:"cat"`
		Ph   string           `json:"ph"`
		Pid  int              `json:"pid"`
		Tid  int              `json:"tid"`
		TS   int64            `json:"ts"`
		Dur  *int64           `json:"dur"`
		S    string           `json:"s"`
		Args map[string]int64 `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestTracerWriteToIsValidChromeTrace(t *testing.T) {
	tr := NewTracer(1)
	start := tr.Now()
	tr.Instant("mapper", "run", KV{"nodes", 42})
	tr.Span("dp", "node 3 And", start, KV{"kept", 2}, KV{"cands_a", 5})

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", got.DisplayTimeUnit)
	}
	if len(got.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(got.TraceEvents))
	}
	in := got.TraceEvents[0]
	if in.Ph != "i" || in.S != "g" || in.Args["nodes"] != 42 {
		t.Errorf("instant event wrong: %+v", in)
	}
	sp := got.TraceEvents[1]
	if sp.Ph != "X" || sp.Dur == nil || sp.Cat != "dp" {
		t.Errorf("span event wrong: %+v", sp)
	}
	if sp.Args["kept"] != 2 || sp.Args["cands_a"] != 5 {
		t.Errorf("span args wrong: %+v", sp.Args)
	}
	if in.Pid != 1 || in.Tid != 1 {
		t.Errorf("pid/tid = %d/%d, want 1/1", in.Pid, in.Tid)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(3)
	recorded := 0
	for id := 0; id < 12; id++ {
		if tr.SampleNode(id) {
			recorded++
		}
	}
	if recorded != 4 { // ids 0, 3, 6, 9
		t.Errorf("sample=3 recorded %d of 12 nodes, want 4", recorded)
	}
	// sampleEvery <= 1 records everything.
	all := NewTracer(0)
	for id := 0; id < 5; id++ {
		if !all.SampleNode(id) {
			t.Fatalf("sample<=1 skipped node %d", id)
		}
	}
}

// TestCaptureEmit: a captured span is identical to one recorded by Span
// directly, the zero PendingSpan is inert, and a nil tracer's Capture
// yields the inert span — the contract the parallel engine's per-worker
// span buffers rely on.
func TestCaptureEmit(t *testing.T) {
	tr := NewTracer(1)
	start := tr.Now()
	p := tr.Capture("dp", "node 1 And", start, KV{"kept", 3})
	if tr.Len() != 0 {
		t.Fatal("Capture recorded an event before Emit")
	}
	tr.Emit(p)
	tr.Emit(PendingSpan{}) // inert: a sampled-out node's buffer slot
	if tr.Len() != 1 {
		t.Fatalf("got %d events, want 1", tr.Len())
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("trace output invalid: %v", err)
	}
	ev := got.TraceEvents[0]
	if ev.Ph != "X" || ev.Cat != "dp" || ev.Name != "node 1 And" || ev.Args["kept"] != 3 {
		t.Errorf("emitted span wrong: %+v", ev)
	}

	var nilTr *Tracer
	if p := nilTr.Capture("c", "n", time.Time{}); p.ok {
		t.Error("nil tracer Capture returned a live span")
	}
	nilTr.Emit(PendingSpan{})
	tr.Emit(nilTr.Capture("c", "n", time.Time{}))
	if tr.Len() != 1 {
		t.Error("emitting a nil tracer's capture recorded an event")
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.SampleNode(0) {
		t.Error("nil tracer samples nodes")
	}
	if !tr.Now().IsZero() {
		t.Error("nil tracer Now() is not the zero time")
	}
	tr.Span("c", "n", time.Time{})
	tr.Instant("c", "n")
	if tr.Len() != 0 {
		t.Error("nil tracer has events")
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("nil tracer output invalid: %v", err)
	}
	if len(got.TraceEvents) != 0 {
		t.Errorf("nil tracer wrote %d events", len(got.TraceEvents))
	}
}
