package power

import (
	"math"
	"strings"
	"testing"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/unate"
)

func mapNet(t *testing.T, n *logic.Network,
	algo func(*logic.Network, mapper.Options) (*mapper.Result, error), opt mapper.Options) *mapper.Result {
	t.Helper()
	d, err := decompose.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := algo(u.Network, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestActivityMatchesFunction(t *testing.T) {
	// A single AND gate fires with probability 1/4; a single OR with 3/4.
	n := logic.New("act")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.And, a, b))
	n.AddOutput("g", n.AddGate(logic.Or, a, b))
	res := mapNet(t, n, mapper.DominoMap, mapper.DefaultOptions())
	p := DefaultParams()
	p.Vectors = 4096
	est, err := Analyze(res, p)
	if err != nil {
		t.Fatal(err)
	}
	andGate := res.OutputGate["f"]
	orGate := res.OutputGate["g"]
	if math.Abs(est.Activity[andGate]-0.25) > 0.05 {
		t.Errorf("AND activity = %v, want ~0.25", est.Activity[andGate])
	}
	if math.Abs(est.Activity[orGate]-0.75) > 0.05 {
		t.Errorf("OR activity = %v, want ~0.75", est.Activity[orGate])
	}
	if est.Total() <= 0 || est.Clock <= 0 {
		t.Errorf("estimate = %s", est)
	}
	if !strings.Contains(est.String(), "per cycle") {
		t.Errorf("String = %q", est.String())
	}
}

func TestClockPowerTracksDischarges(t *testing.T) {
	// The fig. 2 gate: baseline carries a discharge device, SOI does not;
	// the clock energy difference must be exactly one gate capacitance.
	n := logic.New("fig2")
	a := n.AddInput("A")
	b := n.AddInput("B")
	c := n.AddInput("C")
	d := n.AddInput("D")
	or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
	n.AddOutput("f", n.AddGate(logic.And, or3, d))

	opt := mapper.DefaultOptions()
	base := mapNet(t, n, mapper.DominoMap, opt)
	soi := mapNet(t, n, mapper.SOIDominoMap, opt)
	p := DefaultParams()
	eb, err := Analyze(base, p)
	if err != nil {
		t.Fatal(err)
	}
	es, err := Analyze(soi, p)
	if err != nil {
		t.Fatal(err)
	}
	if diff := eb.Clock - es.Clock; math.Abs(diff-p.CapGate) > 1e-9 {
		t.Errorf("clock energy difference = %v, want exactly one discharge device (%v)", diff, p.CapGate)
	}
	// Same logic, same activity: evaluation energy matches.
	if math.Abs(eb.Evaluation-es.Evaluation) > 1e-9 {
		t.Errorf("evaluation energy differs: %v vs %v", eb.Evaluation, es.Evaluation)
	}
}

func TestDeterministicEstimate(t *testing.T) {
	n := logic.New("det")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	n.AddOutput("f", n.AddGate(logic.Xor, n.AddGate(logic.And, a, b), c))
	res := mapNet(t, n, mapper.SOIDominoMap, mapper.DefaultOptions())
	e1, err := Analyze(res, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Analyze(res, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if e1.Total() != e2.Total() {
		t.Error("estimate not deterministic")
	}
}

func TestZeroParamsAdoptDefaults(t *testing.T) {
	n := logic.New("z")
	a := n.AddInput("a")
	n.AddOutput("f", a)
	res := mapNet(t, n, mapper.DominoMap, mapper.DefaultOptions())
	est, err := Analyze(res, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Total() <= 0 {
		t.Errorf("estimate = %s", est)
	}
}
