// Package power estimates the dynamic power of a mapped domino circuit
// from switching activity, separating the two components the paper's
// Table III trades against each other:
//
//   - Evaluation power: a domino gate burns energy every cycle its
//     dynamic node discharges and is precharged again. The discharge
//     probability is the gate's output activity (the probability its
//     pulldown conducts), measured by simulating the source network over
//     random vectors.
//   - Clock power: every clock edge drives the gate capacitance of all
//     clock-connected devices — p-precharge, n-clock feet and p-discharge
//     transistors — every cycle, regardless of data. This is the load the
//     paper's k-weighting exists to reduce.
//
// Capacitances are in normalized gate-capacitance units (one unit per
// transistor gate terminal); energies are per cycle.
package power

import (
	"fmt"
	"math/rand"

	"soidomino/internal/mapper"
)

// Params weight the model's capacitance classes.
type Params struct {
	// CapGate is the input capacitance of one transistor gate terminal.
	CapGate float64
	// CapDyn is the dynamic-node capacitance per attached device terminal.
	CapDyn float64
	// Vectors is the sample size for activity estimation.
	Vectors int
	// Seed makes the estimate reproducible.
	Seed int64
}

// DefaultParams returns the configuration used by the experiments.
func DefaultParams() Params {
	return Params{CapGate: 1.0, CapDyn: 0.5, Vectors: 512, Seed: 1}
}

// Estimate is the per-cycle energy breakdown.
type Estimate struct {
	// Evaluation is Σ activity(g) · C_dyn(g): data-dependent switching.
	Evaluation float64
	// Clock is Σ clocked devices · CapGate: burned every cycle.
	Clock float64
	// Activity[g] is the measured discharge probability of gate g.
	Activity []float64
}

// Total is evaluation plus clock energy.
func (e *Estimate) Total() float64 { return e.Evaluation + e.Clock }

func (e *Estimate) String() string {
	return fmt.Sprintf("eval %.1f + clock %.1f = %.1f per cycle (normalized)",
		e.Evaluation, e.Clock, e.Total())
}

// Analyze measures switching activity over random vectors and folds it
// into the energy model.
func Analyze(res *mapper.Result, p Params) (*Estimate, error) {
	if p.Vectors <= 0 {
		p = DefaultParams()
	}
	rng := rand.New(rand.NewSource(p.Seed))
	inputs := make(map[string]bool, len(res.Source.Inputs))
	names := make([]string, 0, len(res.Source.Inputs))
	for _, id := range res.Source.Inputs {
		names = append(names, res.Source.Nodes[id].Name)
	}
	fires := make([]int, len(res.Gates))
	for v := 0; v < p.Vectors; v++ {
		for _, name := range names {
			inputs[name] = rng.Intn(2) == 1
		}
		values := make(map[string]bool, len(names)+len(res.Gates))
		for k, val := range inputs {
			values[k] = val
		}
		for _, g := range res.Gates {
			on := g.Tree.Conducts(values)
			values[g.Output] = on
			if on {
				fires[g.ID]++
			}
		}
	}

	est := &Estimate{Activity: make([]float64, len(res.Gates))}
	for _, g := range res.Gates {
		act := float64(fires[g.ID]) / float64(p.Vectors)
		est.Activity[g.ID] = act
		// Dynamic node capacitance: pulldown top devices, precharge,
		// keeper and the output stage all hang off it; approximate with
		// the stage's device count.
		cdyn := p.CapDyn * float64(g.Pulldown()+2*g.StageCount()+2)
		est.Evaluation += act * cdyn
		est.Clock += p.CapGate * float64(g.ClockTransistors())
	}
	return est, nil
}
