# Development targets. `make check` is the pre-PR gate referenced in
# README.md: everything it runs must pass before sending a change.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$
