# Development targets. `make check` is the pre-PR gate referenced in
# README.md: everything it runs must pass before sending a change.

GO ?= go

.PHONY: check vet build test race bench fuzz-smoke

check: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# ~30s: a short differential campaign over the full mapper/option grid,
# then the native parser fuzzers. A longer run is `go run ./cmd/soifuzz
# -n 2000`; see the "Fuzzing the mappers" section of README.md.
fuzz-smoke:
	$(GO) run ./cmd/soifuzz -n 300 -seed 1
	$(GO) test -fuzz=FuzzParseBLIF -fuzztime=10s -run=^$$ ./internal/blif
	$(GO) test -fuzz=FuzzParseBench -fuzztime=10s -run=^$$ ./internal/benchfmt
