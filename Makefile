# Development targets. `make check` is the pre-PR gate referenced in
# README.md: everything it runs must pass before sending a change.

GO ?= go

.PHONY: check vet build test race bench bench-baseline obs-overhead par-determinism strash-determinism fuzz-smoke chaos-smoke cluster-smoke trace-smoke persist-smoke

check: vet build race obs-overhead par-determinism strash-determinism fuzz-smoke chaos-smoke cluster-smoke trace-smoke persist-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# Writes a benchstat-friendly JSON baseline (BENCH_<date>.json). Compare
# two baselines with: jq -r .raw BENCH_A.json > a.txt; jq -r .raw
# BENCH_B.json | benchstat a.txt -
bench-baseline: strash-determinism
	$(GO) test -bench=. -benchmem -count=5 -run=^$$ | $(GO) run ./cmd/benchjson > BENCH_$$(date -u +%Y-%m-%d).json
	@echo "wrote BENCH_$$(date -u +%Y-%m-%d).json"

# Guard on the instrumentation's zero-cost-when-disabled contract: a run
# with the stats collector enabled must not be measurably slower, and an
# untraced (or sampled-out) run must not allocate per node. The timing
# test is env-gated so plain `go test ./...` stays load-tolerant.
obs-overhead:
	SOIDOMINO_OBS_OVERHEAD=1 $(GO) test -run 'Test(Stats|Trace)Overhead' -v ./internal/mapper

# The parallel DP engine's byte-identical contract: every testdata
# circuit mapped with workers=1 vs workers=N across all mappers and
# Pareto modes must produce the same service.EncodeJSON bytes, with the
# race detector watching the scheduler itself.
par-determinism:
	$(GO) test -race -run 'TestParallel' -v . ./internal/mapper

# The strash front-end's determinism contract: every testdata circuit's
# strash output is byte-stable across runs and idempotent, the strash-on
# mapping is byte-identical across Workers settings, strash-on/off
# mappings are both equivalent to the source, and renamed submissions
# share one router shard. Benchmarks run it first (bench-baseline) so a
# perf-motivated strash change cannot silently trade away determinism.
strash-determinism:
	$(GO) test -race -run 'TestStrash' -v .
	$(GO) test -race -v ./internal/strash

# ~30s: a short differential campaign over the full mapper/option grid,
# then the native parser fuzzers. A longer run is `go run ./cmd/soifuzz
# -n 2000`; see the "Fuzzing the mappers" section of README.md.
fuzz-smoke:
	$(GO) run ./cmd/soifuzz -n 300 -seed 1
	$(GO) test -fuzz=FuzzParseBLIF -fuzztime=10s -run=^$$ ./internal/blif
	$(GO) test -fuzz=FuzzParseBench -fuzztime=10s -run=^$$ ./internal/benchfmt

# ~30s: a seeded chaos campaign against an in-process soimapd — every
# fault point armed, every successful response re-verified by the fuzz
# oracles. Replay a finding with: go run ./cmd/soichaos -seed N. See the
# "Resilience" section of README.md.
chaos-smoke:
	$(GO) run ./cmd/soichaos -seed 1 -requests 4000 -duration 30s -p 0.12 -sim 2

# Seconds: the distributed-tracing gate — one traced request through an
# in-process router + two peer replicas must stitch into a single
# Perfetto trace carrying router, replica queue/job/phase and peer-cache
# spans, with an explain record whose phase times nest inside the run
# wall. See DESIGN.md §14 and the Observability section of README.md.
trace-smoke:
	$(GO) test -race -run 'TestTraceSmokeStitchesClusterTrace' -v -count=1 ./internal/cluster

# ~30s: the multi-node campaign — an in-process soirouter fronting three
# replicas with the shared cache tier, one replica killed and restarted
# mid-flight, identical-submission bursts driving both coalescing
# layers. Every completed response is byte-compared against a clean
# local re-derivation. Replay with: go run ./cmd/soichaos -cluster -seed N.
cluster-smoke:
	$(GO) run ./cmd/soichaos -cluster -seed 1 -requests 2000 -duration 30s -p 0.02 -sim 1

# Seconds: the crash-persistence gate — a state-dir soimapd takes load
# with torn-write/fsync faults armed against its durable tier, is
# crash-stopped mid-batch, and restarts over the same dir. The restart
# must be warm (store hits from journal recovery), re-admit the cut-down
# jobs under their original ids, quarantine every injected tear, and
# replay every request byte-identically. See DESIGN.md §15 and the
# Persistence section of README.md. Replay a finding with:
# go run ./cmd/soichaos -persist -seed N.
persist-smoke:
	$(GO) test -race -run 'TestPersistSmoke' -v -count=1 ./internal/chaostest
