package soidomino

import (
	"math/rand"
	"testing"

	"soidomino/internal/bench"
	"soidomino/internal/delay"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/report"
	"soidomino/internal/soisim"
	"soidomino/internal/verify"
)

// TestPipelineEndToEnd drives the complete stack — generator, decompose,
// unate, all four mappers, audit, functional verification, transistor
// netlist, cross-check, delay analysis and a short switch-level simulation
// — over a representative slice of the benchmark suite, including the
// extra (non-paper) circuits.
func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	circuits := []string{
		"cm150", "z4ml", "9symml", "f51m", "count", "cordic", "frg1",
		"x-dec4", "x-cmp8", "x-par16", "x-gray8", "x-csa16",
	}
	algos := []struct {
		name string
		fn   func(p *report.Pipeline, opt mapper.Options) (*mapper.Result, error)
	}{
		{"domino", func(p *report.Pipeline, opt mapper.Options) (*mapper.Result, error) {
			return p.Map(report.Domino, opt, false)
		}},
		{"rs", func(p *report.Pipeline, opt mapper.Options) (*mapper.Result, error) {
			return p.Map(report.RS, opt, false)
		}},
		{"soi", func(p *report.Pipeline, opt mapper.Options) (*mapper.Result, error) {
			return p.Map(report.SOI, opt, false)
		}},
		{"soi-pareto", func(p *report.Pipeline, opt mapper.Options) (*mapper.Result, error) {
			opt.Pareto = true
			return mapper.SOIDominoMap(p.Unate, opt)
		}},
	}

	for _, name := range circuits {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := report.Prepare(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := mapper.DefaultOptions()
			opt.BaselineStackOrder = mapper.OrderHashed
			for _, algo := range algos {
				res, err := algo.fn(p, opt)
				if err != nil {
					t.Fatalf("%s: %v", algo.name, err)
				}
				if err := res.Audit(); err != nil {
					t.Fatalf("%s audit: %v", algo.name, err)
				}
				if err := verify.MustBeEquivalent(p.Orig, res, verify.DefaultOptions()); err != nil {
					t.Fatalf("%s: %v", algo.name, err)
				}
				circ, err := netlist.Build(res)
				if err != nil {
					t.Fatalf("%s netlist: %v", algo.name, err)
				}
				if err := circ.Audit(); err != nil {
					t.Fatalf("%s netlist audit: %v", algo.name, err)
				}
				if err := circ.CrossCheck(res); err != nil {
					t.Fatalf("%s cross-check: %v", algo.name, err)
				}
				if _, err := delay.Analyze(res, delay.DefaultParams()); err != nil {
					t.Fatalf("%s delay: %v", algo.name, err)
				}
				// Short simulation: outputs must track the mapped function
				// with zero corruption on protected circuits.
				sim := soisim.New(circ, soisim.DefaultConfig())
				for cyc, vec := range soisim.RandomVectors(circ, rand.New(rand.NewSource(3)), 12) {
					got, events, err := sim.Cycle(vec)
					if err != nil {
						t.Fatal(err)
					}
					for _, e := range events {
						if e.Corrupted {
							t.Fatalf("%s: corrupted at cycle %d: %v", algo.name, cyc, e)
						}
					}
					want, err := res.Eval(vec)
					if err != nil {
						t.Fatal(err)
					}
					for out, v := range want {
						if got[out] != v {
							t.Fatalf("%s: cycle %d output %q mismatch", algo.name, cyc, out)
						}
					}
				}
			}
		})
	}
}

// TestCompoundPipelineEndToEnd applies the compound transformation after
// the baseline over the suite slice and re-runs the full validation.
func TestCompoundPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	for _, name := range []string{"t481", "c880", "des", "x-cmp8"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := report.Prepare(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := mapper.DefaultOptions()
			opt.BaselineStackOrder = mapper.OrderHashed
			res, err := p.Map(report.Domino, opt, false)
			if err != nil {
				t.Fatal(err)
			}
			before := res.Stats
			if _, err := mapper.CompoundTransform(res, mapper.DefaultCompoundOptions()); err != nil {
				t.Fatal(err)
			}
			if res.Stats.TTotal > before.TTotal {
				t.Errorf("compound increased Ttotal: %d -> %d", before.TTotal, res.Stats.TTotal)
			}
			if err := res.Audit(); err != nil {
				t.Fatal(err)
			}
			if err := verify.MustBeEquivalent(p.Orig, res, verify.DefaultOptions()); err != nil {
				t.Fatal(err)
			}
			circ, err := netlist.Build(res)
			if err != nil {
				t.Fatal(err)
			}
			if err := circ.Audit(); err != nil {
				t.Fatal(err)
			}
			if err := circ.CrossCheck(res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBenchSuiteMapsEverywhere maps every registered benchmark (including
// the big synthetics) with the SOI mapper and audits the result: a
// coverage sweep that catches generator/mapper interactions the curated
// tables miss.
func TestBenchSuiteMapsEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	for _, name := range bench.Names() {
		p, err := report.Prepare(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := p.Map(report.SOI, mapper.DefaultOptions(), false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Audit(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.TTotal == 0 {
			t.Errorf("%s: empty mapping", name)
		}
	}
}
