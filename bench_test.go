package soidomino

import (
	"math/rand"
	"testing"

	"soidomino/internal/bench"
	"soidomino/internal/decompose"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/pbe"
	"soidomino/internal/report"
	"soidomino/internal/soisim"
	"soidomino/internal/unate"
)

// Each benchmark below regenerates one of the paper's tables or figures;
// run them with
//
//	go test -bench=. -benchmem
//
// The table benchmarks report the headline metric of the corresponding
// table as a custom unit next to wall-clock cost.

// BenchmarkTableI regenerates Table I (Domino_Map vs RS_Map, area
// objective) and reports the average discharge-transistor reduction
// (paper: 25.41%).
func BenchmarkTableI(b *testing.B) {
	opt := mapper.DefaultOptions()
	for i := 0; i < b.N; i++ {
		t, err := report.RunTableI(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.AvgDischReduction(), "disch-red-%")
		b.ReportMetric(t.AvgTotalReduction(), "total-red-%")
	}
}

// BenchmarkTableII regenerates Table II (Domino_Map vs SOI_Domino_Map,
// area objective) and reports the average discharge reduction
// (paper: 53.00%) and total reduction (paper: 6.29%).
func BenchmarkTableII(b *testing.B) {
	opt := mapper.DefaultOptions()
	for i := 0; i < b.N; i++ {
		t, err := report.RunTableII(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.AvgDischReduction(), "disch-red-%")
		b.ReportMetric(t.AvgTotalReduction(), "total-red-%")
	}
}

// BenchmarkTableIII regenerates Table III (clock weight k=1 vs k=2) and
// reports the average clock-transistor reduction (paper: 3.82%).
func BenchmarkTableIII(b *testing.B) {
	opt := mapper.DefaultOptions()
	for i := 0; i < b.N; i++ {
		t, err := report.RunTableIII(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.AvgClockReduction(), "clock-red-%")
	}
}

// BenchmarkTableIV regenerates Table IV (depth objective) and reports the
// average discharge reduction (paper: 49.76%) and level reduction
// (paper: 6.36%).
func BenchmarkTableIV(b *testing.B) {
	opt := mapper.DefaultOptions()
	for i := 0; i < b.N; i++ {
		t, err := report.RunTableIV(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.AvgDischReduction(), "disch-red-%")
		b.ReportMetric(t.AvgLevelReduction(), "level-red-%")
	}
}

// BenchmarkAblation regenerates the RS/RS-deep/SOI ablation (DESIGN.md §7)
// over the Table II suite.
func BenchmarkAblation(b *testing.B) {
	opt := mapper.DefaultOptions()
	for i := 0; i < b.N; i++ {
		t, err := report.RunAblation(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		avg := t.Avg()
		b.ReportMetric(avg[0], "rs-%")
		b.ReportMetric(avg[1], "rsdeep-%")
		b.ReportMetric(avg[2], "soi-%")
	}
}

// BenchmarkExtensionExperiments regenerates the beyond-the-paper tables
// (sequence-aware pruning, clock power, diffusion area, delay) and reports
// their headline metrics.
func BenchmarkExtensionExperiments(b *testing.B) {
	opt := mapper.DefaultOptions()
	for i := 0; i < b.N; i++ {
		seq, err := report.RunSequence(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		pow, err := report.RunPower(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		area, err := report.RunArea(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		dly, err := report.RunDelay(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(seq.Avg()[0], "seq-prune-%")
		b.ReportMetric(pow.AvgClockSavings()[0], "clock-energy-save-%")
		b.ReportMetric(area.AvgReductions()[1], "area-red-%")
		b.ReportMetric(dly.AvgSOIRatio(), "delay-ratio")
	}
}

// BenchmarkCompoundTable regenerates the solution-7 experiment.
func BenchmarkCompoundTable(b *testing.B) {
	opt := mapper.DefaultOptions()
	for i := 0; i < b.N; i++ {
		t, err := report.RunCompound(opt, false)
		if err != nil {
			b.Fatal(err)
		}
		conv, saved := t.Totals()
		b.ReportMetric(float64(conv), "gates-converted")
		b.ReportMetric(float64(saved), "transistors-saved")
	}
}

// BenchmarkFigure2Simulation replays the paper's fig. 2 PBE failure
// sequence on the switch-level simulator (unprotected bulk mapping) and
// reports corrupted evaluations per replay (must be 1).
func BenchmarkFigure2Simulation(b *testing.B) {
	p, err := report.Prepare("cm150")
	if err != nil {
		b.Fatal(err)
	}
	_ = p // cm150 prepared only to warm the registry path
	fig2, err := report.PrepareNetwork(figure2Network())
	if err != nil {
		b.Fatal(err)
	}
	res, err := fig2.Map(report.Domino, mapper.DefaultOptions(), false)
	if err != nil {
		b.Fatal(err)
	}
	circ, err := netlist.Build(res)
	if err != nil {
		b.Fatal(err)
	}
	seq := []map[string]bool{
		{"A": true, "B": false, "C": false, "D": false},
		{"A": true, "B": false, "C": false, "D": false},
		{"A": true, "B": false, "C": false, "D": false},
		{"A": false, "B": false, "C": false, "D": true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := soisim.DefaultConfig()
		cfg.DisableDischarge = true
		sim := soisim.New(circ, cfg)
		corrupted := 0
		for _, vec := range seq {
			_, events, err := sim.Cycle(vec)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range events {
				if e.Corrupted {
					corrupted++
				}
			}
		}
		if corrupted != 1 {
			b.Fatalf("expected exactly 1 corrupted evaluation, got %d", corrupted)
		}
	}
}

// BenchmarkMapDes measures the full pipeline on the suite's largest
// circuit (the DES-style round network) under the SOI mapper.
func BenchmarkMapDes(b *testing.B) {
	src := bench.MustBuild("des")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := decompose.Decompose(src)
		if err != nil {
			b.Fatal(err)
		}
		u, err := unate.Convert(d)
		if err != nil {
			b.Fatal(err)
		}
		res, err := mapper.SOIDominoMap(u.Network, mapper.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.TTotal), "Ttotal")
	}
}

// BenchmarkMapDesBaseline is the same pipeline under the bulk baseline,
// for mapper-overhead comparison.
func BenchmarkMapDesBaseline(b *testing.B) {
	src := bench.MustBuild("des")
	d, err := decompose.Decompose(src)
	if err != nil {
		b.Fatal(err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.DominoMap(u.Network, mapper.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPBEAnalyze measures the structural discharge-point analysis on
// random pulldown trees.
func BenchmarkPBEAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	trees := make([]benchTree, 64)
	for i := range trees {
		trees[i].t = randomTree(rng, 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trees[i%len(trees)].t
		a := pbe.Analyze(tr)
		if len(a.Immediate) < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkSimulatorCycle measures one clock cycle of the switch-level
// simulator on the mapped c880 circuit.
func BenchmarkSimulatorCycle(b *testing.B) {
	p, err := report.Prepare("c880")
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.Map(report.SOI, mapper.DefaultOptions(), false)
	if err != nil {
		b.Fatal(err)
	}
	circ, err := netlist.Build(res)
	if err != nil {
		b.Fatal(err)
	}
	sim := soisim.New(circ, soisim.DefaultConfig())
	vec := soisim.RandomVectors(circ, rand.New(rand.NewSource(2)), 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.Cycle(vec); err != nil {
			b.Fatal(err)
		}
	}
}
