package soidomino

import (
	"math/rand"

	"soidomino/internal/logic"
	"soidomino/internal/sp"
)

// figure2Network builds the paper's running example (A+B+C)*D.
func figure2Network() *logic.Network {
	n := logic.New("fig2")
	a := n.AddInput("A")
	b := n.AddInput("B")
	c := n.AddInput("C")
	d := n.AddInput("D")
	or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
	n.AddOutput("f", n.AddGate(logic.And, or3, d))
	return n
}

type benchTree struct{ t *sp.Tree }

// randomTree builds a random series-parallel pulldown tree for the
// analysis micro-benchmarks.
func randomTree(rng *rand.Rand, depth int) *sp.Tree {
	if depth == 0 || rng.Intn(3) == 0 {
		return sp.NewLeaf(string(rune('a'+rng.Intn(8))), false, -1)
	}
	k := 2 + rng.Intn(2)
	children := make([]*sp.Tree, k)
	for i := range children {
		children[i] = randomTree(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return sp.NewSeries(children...)
	}
	return sp.NewParallel(children...)
}
