package soidomino

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soidomino/internal/bench"
	"soidomino/internal/benchfmt"
	"soidomino/internal/blif"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/report"
	"soidomino/internal/service"
)

// testdataCircuits loads every circuit under testdata/ (the committed
// BLIF/bench files plus the fuzz corpus), the circuit set the
// par-determinism CI gate sweeps.
func testdataCircuits(t testing.TB) map[string]*logic.Network {
	t.Helper()
	out := make(map[string]*logic.Network)
	add := func(path string) {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var n *logic.Network
		if strings.HasSuffix(path, ".bench") {
			n, err = benchfmt.Parse(path, f)
		} else {
			n, err = blif.Parse(f)
		}
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out[filepath.Base(path)] = n
	}
	for _, pat := range []string{"testdata/*.blif", "testdata/*.bench", "testdata/fuzz/corpus/*.blif"} {
		paths, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			add(p)
		}
	}
	if len(out) < 5 {
		t.Fatalf("expected at least 5 testdata circuits, found %d", len(out))
	}
	return out
}

func mapByAlgo(algo string, n *logic.Network, opt mapper.Options) (*mapper.Result, error) {
	switch algo {
	case "domino":
		return mapper.DominoMap(n, opt)
	case "rs":
		return mapper.RSMap(n, opt)
	case "rsdeep":
		return mapper.RSMapDeep(n, opt)
	default:
		return mapper.SOIDominoMap(n, opt)
	}
}

// TestParallelDeterminismGate is the `make par-determinism` CI gate: for
// every testdata circuit × mapper × Pareto mode, the service encoding of
// a parallel run (workers 2 and 8) is byte-identical to the sequential
// run's — the exact property the result cache, the chaos byte-compare
// and the fuzz corpus replay all assume.
func TestParallelDeterminismGate(t *testing.T) {
	for name, src := range testdataCircuits(t) {
		pipe, err := report.PrepareNetwork(src)
		if err != nil {
			t.Fatalf("%s: prepare: %v", name, err)
		}
		for _, algo := range []string{"domino", "rs", "rsdeep", "soi"} {
			for _, pareto := range []bool{false, true} {
				opt := mapper.DefaultOptions()
				opt.Pareto = pareto
				opt.Workers = 1
				seq, err := mapByAlgo(algo, pipe.Unate, opt)
				if err != nil {
					t.Fatalf("%s/%s pareto=%v: sequential: %v", name, algo, pareto, err)
				}
				want, err := service.EncodeJSON(service.NewMapResult(name, pipe, seq))
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 8} {
					opt.Workers = workers
					par, err := mapByAlgo(algo, pipe.Unate, opt)
					if err != nil {
						t.Fatalf("%s/%s pareto=%v workers=%d: %v", name, algo, pareto, workers, err)
					}
					got, err := service.EncodeJSON(service.NewMapResult(name, pipe, par))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s/%s pareto=%v workers=%d: EncodeJSON differs from sequential run",
							name, algo, pareto, workers)
					}
				}
			}
		}
	}
}

// BenchmarkMapParallel measures DP scaling on the suite's largest
// circuit at several worker counts. The sub-benchmark names are
// benchstat-friendly: compare workers=1 against workers=N in the
// committed BENCH_*.json baselines.
func BenchmarkMapParallel(b *testing.B) {
	pipe, err := report.PrepareNetwork(bench.MustBuild("des"))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := mapper.DefaultOptions()
			opt.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := mapper.SOIDominoMap(pipe.Unate, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
